"""Worker supervision, retry/failover and degraded answers for sharding.

The §5 serving scheme assumes every shard worker answers every round
trip; this module drops that assumption.  It gives the coordinator a
policy object — :class:`SupervisorConfig` — and the state machine that
enforces it — :class:`WorkerSupervisor` — so that a worker crash, an
OOM kill, or a wedge that would otherwise hang a doorbell read forever
degrades service instead of failing it:

* **liveness tracking** — per-worker fault/restart accounting, with
  workers that exhaust their restart budget *quarantined* (never routed
  to again) rather than retried forever;
* **bounded deadlines** — every sub-batch send/recv carries the
  configured deadline, so a wedged-but-alive worker surfaces as a typed
  :class:`~repro.exceptions.WorkerTimeout` the supervisor can act on;
* **retry + failover** — a failed sub-batch is re-dispatched (fresh
  sequence number, exponential backoff) to a surviving replica via the
  :class:`~repro.service.routing.ReplicaRouter`, or to the restarted
  worker itself — restart is cheap because workers re-attach the shared
  segment / mmap store rather than reloading the index;
* **per-shard circuit breaker** — when a shard is fully dark, queries
  stop paying the retry tax and are answered from the coordinator-side
  landmark triangulation bound (:func:`shard_estimates`,
  ``method="estimate"``, the same degrade lane the network front end
  uses for overload), until the cool-off expires and a probe batch
  tests the shard again;
* an optional **heartbeat monitor** thread that restarts dead workers
  proactively between batches instead of waiting for the next query to
  trip over the corpse.

The supervisor itself is transport- and backend-agnostic: it holds
policy, counters and breaker state, while the coordinator
(:class:`~repro.service.shardbase.FlatShardedBase`) owns the actual
dispatch loop and the backend hooks (``worker_alive`` /
``kill_worker`` / ``restart_worker``).  Everything it knows shows up
under the ``supervisor`` key of ``transport_stats()`` and therefore in
the telemetry snapshot's ``shards`` block.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.oracle import QueryResult
from repro.exceptions import QueryError, WorkerTimeout

#: Breaker states, as they appear in snapshots.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass
class SupervisorConfig:
    """Knobs of the supervision layer (all durations in seconds).

    Attributes:
        deadline_s: per-sub-batch send/recv deadline.  ``None`` waits
            forever (the unsupervised default behaviour); any fault
            handling needs a finite value, since a wedged worker is
            only ever *observed* through this timeout.
        retries: failover attempts per failed sub-batch before the
            shard is declared unavailable for this batch.
        backoff_base_s / backoff_max_s: exponential backoff between
            failover attempts (``base * 2**attempt``, capped).
        restart: restart dead/wedged workers (procpool re-spawns the
            process and re-attaches the shared index; the thread
            backend refreshes the worker's executor).
        max_restarts / restart_window_s: per-worker restart budget —
            more than ``max_restarts`` restarts within the window
            quarantines the worker instead (a crash loop is a bug, not
            a transient).
        breaker_failures: consecutive sub-batch failures (retry budget
            exhausted) that open a shard's circuit breaker.
        breaker_reset_s: cool-off before an open breaker goes
            half-open and lets a probe batch through.
        degrade: answer breaker-blocked queries from the landmark
            estimate (``method="estimate"``) when the index carries
            tables; ``False`` turns a dark shard into typed errors.
        heartbeat_s: period of the background liveness monitor
            (``0`` disables it — dead workers are then restarted
            lazily, when a batch next routes to them).
    """

    deadline_s: Optional[float] = 5.0
    retries: int = 3
    backoff_base_s: float = 0.01
    backoff_max_s: float = 0.25
    restart: bool = True
    max_restarts: int = 5
    restart_window_s: float = 60.0
    breaker_failures: int = 2
    breaker_reset_s: float = 5.0
    degrade: bool = True
    heartbeat_s: float = 0.0

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise QueryError("deadline_s must be positive (or None)")
        if self.retries < 1:
            raise QueryError("retries must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise QueryError("backoff durations must be >= 0")
        if self.max_restarts < 0:
            raise QueryError("max_restarts must be >= 0")
        if self.breaker_failures < 1:
            raise QueryError("breaker_failures must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before failover attempt ``attempt`` (0 = immediate)."""
        if attempt <= 0:
            return 0.0
        return min(self.backoff_max_s, self.backoff_base_s * (2 ** (attempt - 1)))

    def retry_fits(self, attempt: int, residual_s: Optional[float]) -> bool:
        """Can failover attempt ``attempt`` fit in a remaining time budget?

        ``residual_s`` is the request's residual deadline budget
        (``None`` = unbounded).  An attempt needs its backoff sleep
        *plus* at least the backoff floor's worth of execute time; a
        retry that cannot fit converts straight to the degrade/estimate
        lane instead of burning the clock.
        """
        if residual_s is None:
            return True
        return residual_s > self.backoff_s(attempt) + self.backoff_base_s


@dataclass
class _Breaker:
    """One shard's circuit breaker (guarded by the supervisor's lock)."""

    state: str = BREAKER_CLOSED
    failures: int = 0
    opened_at: float = 0.0


@dataclass
class _WorkerState:
    """Per-worker supervision bookkeeping."""

    restarts: int = 0
    faults: int = 0
    quarantined: bool = False
    last_ok: float = 0.0
    restart_times: deque = field(default_factory=deque)


class WorkerSupervisor:
    """Liveness, retry, restart-budget and breaker state for one backend.

    Thread-safe: the coordinator mutates it from the batch path while
    the optional monitor thread reads liveness — every counter update
    happens under one lock.
    """

    def __init__(
        self,
        num_shards: int,
        replicas: int,
        config: Optional[SupervisorConfig] = None,
        *,
        clock=time.monotonic,
    ) -> None:
        self.config = config or SupervisorConfig()
        self.num_shards = num_shards
        self.replicas = replicas
        self.num_workers = num_shards * replicas
        self._clock = clock
        self._lock = threading.Lock()
        self._workers = [_WorkerState() for _ in range(self.num_workers)]
        self._breakers = [_Breaker() for _ in range(num_shards)]
        # Cumulative event counters (snapshot()).
        self.restarts = 0
        self.retries = 0
        self.failovers = 0
        self.timeouts = 0
        self.deaths = 0
        self.degraded_pairs = 0
        self.breaker_opens = 0
        self._monitor: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # fault / success accounting
    # ------------------------------------------------------------------
    def note_fault(self, worker: int, exc: BaseException) -> None:
        """Record a transport-level worker fault (death, wedge, corrupt)."""
        with self._lock:
            self._workers[worker].faults += 1
            if isinstance(exc, WorkerTimeout):
                self.timeouts += 1
            else:
                self.deaths += 1

    def note_ok(self, worker: int) -> None:
        with self._lock:
            self._workers[worker].last_ok = self._clock()

    def note_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def note_failover(self) -> None:
        with self._lock:
            self.failovers += 1

    def note_degraded(self, pairs: int) -> None:
        with self._lock:
            self.degraded_pairs += pairs

    # ------------------------------------------------------------------
    # restart budget / quarantine
    # ------------------------------------------------------------------
    def allow_restart(self, worker: int) -> bool:
        """True while the worker's restart budget has room."""
        if not self.config.restart:
            return False
        now = self._clock()
        with self._lock:
            state = self._workers[worker]
            if state.quarantined:
                return False
            window = self.config.restart_window_s
            times = state.restart_times
            while times and now - times[0] > window:
                times.popleft()
            return len(times) < self.config.max_restarts

    def note_restart(self, worker: int) -> None:
        with self._lock:
            state = self._workers[worker]
            state.restarts += 1
            state.restart_times.append(self._clock())
            self.restarts += 1

    def quarantine(self, worker: int) -> None:
        """Permanently stop routing to a worker (budget exhausted)."""
        with self._lock:
            self._workers[worker].quarantined = True

    def is_quarantined(self, worker: int) -> bool:
        with self._lock:
            return self._workers[worker].quarantined

    def worker_restarts(self, worker: int) -> int:
        with self._lock:
            return self._workers[worker].restarts

    # ------------------------------------------------------------------
    # circuit breaker
    # ------------------------------------------------------------------
    def admit(self, shard_id: int) -> bool:
        """May a batch be dispatched to this shard right now?

        Closed and half-open admit; open admits only once the cool-off
        elapsed, which flips the breaker half-open — the admitted batch
        is the probe that decides between re-opening and closing.
        """
        with self._lock:
            breaker = self._breakers[shard_id]
            if breaker.state != BREAKER_OPEN:
                return True
            if self._clock() - breaker.opened_at >= self.config.breaker_reset_s:
                breaker.state = BREAKER_HALF_OPEN
                return True
            return False

    def breaker_failure(self, shard_id: int) -> bool:
        """Record an exhausted sub-batch; returns True if now open."""
        with self._lock:
            breaker = self._breakers[shard_id]
            if breaker.state == BREAKER_HALF_OPEN:
                # The probe failed — straight back to open.
                breaker.state = BREAKER_OPEN
                breaker.opened_at = self._clock()
                self.breaker_opens += 1
                return True
            breaker.failures += 1
            if breaker.failures >= self.config.breaker_failures:
                if breaker.state != BREAKER_OPEN:
                    breaker.state = BREAKER_OPEN
                    breaker.opened_at = self._clock()
                    self.breaker_opens += 1
            return breaker.state == BREAKER_OPEN

    def breaker_success(self, shard_id: int) -> None:
        """An answered sub-batch closes the shard's breaker."""
        with self._lock:
            breaker = self._breakers[shard_id]
            if breaker.state != BREAKER_CLOSED or breaker.failures:
                breaker.state = BREAKER_CLOSED
                breaker.failures = 0

    def breaker_state(self, shard_id: int) -> str:
        with self._lock:
            return self._breakers[shard_id].state

    # ------------------------------------------------------------------
    # heartbeat monitor
    # ------------------------------------------------------------------
    def start_monitor(self, backend) -> None:
        """Start the background liveness loop (``heartbeat_s > 0``)."""
        if self.config.heartbeat_s <= 0 or self._monitor is not None:
            return
        self._stop.clear()
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            args=(backend,),
            name="repro-supervisor",
            daemon=True,
        )
        self._monitor.start()

    def stop_monitor(self) -> None:
        self._stop.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(timeout=2 * self.config.heartbeat_s + 1.0)
            self._monitor = None

    def _monitor_loop(self, backend) -> None:
        while not self._stop.wait(self.config.heartbeat_s):
            for worker in range(self.num_workers):
                if self.is_quarantined(worker) or backend.worker_alive(worker):
                    continue
                # Restart under the batch lock so the transport reset
                # never races an in-flight exchange.
                with backend._batch_lock:
                    if backend._closed or backend.worker_alive(worker):
                        continue
                    backend._supervised_restart(worker)
            if self._stop.is_set():
                return

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``supervisor`` block of ``transport_stats()``."""
        with self._lock:
            return {
                "deadline_s": self.config.deadline_s,
                "retry_budget": self.config.retries,
                "restart": self.config.restart,
                "restarts": self.restarts,
                "retries": self.retries,
                "failovers": self.failovers,
                "timeouts": self.timeouts,
                "worker_deaths": self.deaths,
                "degraded_pairs": self.degraded_pairs,
                "breaker_opens": self.breaker_opens,
                "workers": [
                    {
                        "worker": worker,
                        "restarts": state.restarts,
                        "faults": state.faults,
                        "quarantined": state.quarantined,
                    }
                    for worker, state in enumerate(self._workers)
                ],
                "breakers": [
                    {
                        "shard": shard_id,
                        "state": breaker.state,
                        "failures": breaker.failures,
                    }
                    for shard_id, breaker in enumerate(self._breakers)
                ],
            }


def shard_estimates(flat, pairs) -> list[QueryResult]:
    """Degraded answers for ``pairs`` from the landmark upper bound.

    The batched coordinator-side counterpart of the network front end's
    overload estimator: ``min_l d(s, l) + d(l, t)`` over the flat
    index's stored landmark rows — the Potamias-style triangulation
    bound, computed without touching any shard worker.  Results carry
    ``method="estimate"`` (distance ``None`` when no landmark reaches
    both endpoints), so callers and telemetry can tell a degraded
    answer from an exact one.

    ``pairs`` is an ``(m, 2)`` int array; requires ``flat.has_tables``.
    """
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    table = np.asarray(flat.table_dist, dtype=np.float64)
    k = int(table.shape[0])
    ds = table[:, pairs[:, 0]]
    dt = table[:, pairs[:, 1]]
    ok = (ds >= 0) & (dt >= 0) & np.isfinite(ds) & np.isfinite(dt)
    sums = np.where(ok, ds + dt, np.inf)
    best = sums.min(axis=0) if k else np.full(pairs.shape[0], np.inf)
    integral = flat.integral
    results: list[QueryResult] = []
    for (s, t), bound in zip(pairs.tolist(), best.tolist()):
        if s == t:
            results.append(QueryResult(s, t, 0, None, "estimate", None, 0))
        elif bound != float("inf"):
            value = int(bound) if integral else float(bound)
            results.append(QueryResult(s, t, value, None, "estimate", None, k))
        else:
            results.append(QueryResult(s, t, None, None, "estimate", None, k))
    return results
