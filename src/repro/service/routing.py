"""Load-aware replica routing for the shard coordinator.

The §5 partition maps every query to exactly one home shard, so a
Zipf-skewed workload makes hot shards: one worker's queue gates the
whole batch while its siblings idle.  The classic fix is *replication*
— run ``replicas`` interchangeable workers per shard (every worker
holds the full read-only index mapping anyway; only the routing key
differs) and let the coordinator pick, per sub-batch, the replica with
the least outstanding work.

:class:`ReplicaRouter` is that picker plus the bookkeeping the
telemetry snapshot folds in: per-replica outstanding pair depth (the
routing signal), per-shard dispatched pair/frame-byte totals, and the
coordinator/worker time split (dispatch vs execute vs collect) that
:meth:`FlatShardedBase.transport_stats
<repro.service.shardbase.FlatShardedBase.transport_stats>` exposes.

Depth is measured in *pairs*, not frames — a 1000-pair sub-batch loads
a replica more than ten 10-pair ones — and ties break round-robin so
an idle system still spreads work across replicas.
"""

from __future__ import annotations

import threading


class ReplicaRouter:
    """Queue-depth-weighted replica choice with per-shard accounting."""

    def __init__(self, num_shards: int, replicas: int) -> None:
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.num_shards = num_shards
        self.replicas = replicas
        self._lock = threading.Lock()
        # Outstanding pairs per (shard, replica) — the routing signal.
        self._depth = [[0] * replicas for _ in range(num_shards)]
        self._rr = [0] * num_shards
        # Cumulative per-shard traffic.
        self._pairs = [0] * num_shards
        self._sub_batches = [0] * num_shards
        self._req_bytes = [0] * num_shards
        self._resp_bytes = [0] * num_shards
        # Coordinator/worker time split, in seconds (execute is summed
        # across workers, so it can exceed wall time — that's the point).
        self._dispatch_s = 0.0
        self._execute_s = 0.0
        self._collect_s = 0.0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def pick(self, shard_id: int, *, exclude=()) -> int:
        """Choose the least-loaded replica of ``shard_id``.

        ``exclude`` names replicas the caller knows to be unusable (dead
        or quarantined workers, or the replica a failover is escaping);
        they are skipped unless *every* replica is excluded, in which
        case depth wins — handing back a known-bad replica is still
        better than handing back nothing, since the caller's retry
        budget bounds the damage.
        """
        with self._lock:
            depths = self._depth[shard_id]
            if self.replicas == 1:
                return 0
            candidates = [
                r for r in range(self.replicas) if r not in exclude
            ] or list(range(self.replicas))
            best = min(depths[r] for r in candidates)
            start = self._rr[shard_id]
            for step in range(self.replicas):
                replica = (start + step) % self.replicas
                if replica in candidates and depths[replica] == best:
                    self._rr[shard_id] = (replica + 1) % self.replicas
                    return replica
            return candidates[0]  # unreachable; min() guarantees a match

    def dispatched(
        self, shard_id: int, replica: int, pairs: int, frame_bytes: int
    ) -> None:
        with self._lock:
            self._depth[shard_id][replica] += pairs
            self._pairs[shard_id] += pairs
            self._sub_batches[shard_id] += 1
            self._req_bytes[shard_id] += frame_bytes

    def completed(
        self, shard_id: int, replica: int, pairs: int, frame_bytes: int
    ) -> None:
        with self._lock:
            self._depth[shard_id][replica] -= pairs
            self._resp_bytes[shard_id] += frame_bytes

    def observe_batch(
        self, dispatch_s: float, execute_s: float, collect_s: float
    ) -> None:
        with self._lock:
            self._dispatch_s += dispatch_s
            self._execute_s += execute_s
            self._collect_s += collect_s

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Routing state and time split for the telemetry snapshot."""
        with self._lock:
            return {
                "dispatch_s": self._dispatch_s,
                "execute_s": self._execute_s,
                "collect_s": self._collect_s,
                "per_shard": [
                    {
                        "shard": shard_id,
                        "sub_batches": self._sub_batches[shard_id],
                        "pairs": self._pairs[shard_id],
                        "req_frame_bytes": self._req_bytes[shard_id],
                        "resp_frame_bytes": self._resp_bytes[shard_id],
                        "depth": list(self._depth[shard_id]),
                    }
                    for shard_id in range(self.num_shards)
                ],
            }
