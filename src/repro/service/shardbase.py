"""Shared state, transport plane and accounting of the shard backends.

Both §5 executors — the thread-backed
:class:`~repro.service.sharded.ShardedService` and the process-backed
:class:`~repro.service.procpool.ProcessShardedService` — serve the same
flattened arrays through the same
:class:`~repro.core.engine.ShardQueryEngine`; what differs is only
*where* the shard workers run and *how* frames reach them.  Everything
else lives here once:

* placement, per-shard memory accounting, batch validation/partitioning
  and the dict-free ``from_saved`` constructor (as before);
* the :class:`ShardTransport` protocol — ``send(worker, RequestFrame)``
  / ``recv(worker, seq) -> ResponseFrame`` — that each backend
  implements (inline thread dispatch, frame pipes, shared-memory
  rings);
* the **one** coordinator ``query_batch`` loop: validate, partition by
  home shard, split into ``sub_batch``-sized chunks, route each chunk
  to the least-loaded replica (:class:`~repro.service.routing.ReplicaRouter`),
  push request frames, then collect/decode response frames and fold the
  §5 wire accounting into :attr:`log`.

Because encoding, decoding and accounting are identical for every
transport, result parity across backends is structural rather than
re-implemented per backend — the transports move opaque frames.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import nullcontext
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from repro.core.flat import FlatIndex
from repro.core.parallel import (
    BYTES_PER_CONTROL,
    MessageLog,
    ShardReport,
    balance_summary_from_reports,
    shard_assignment,
)
from repro.exceptions import (
    NodeNotFoundError,
    QueryError,
    WorkerDied,
    WorkerFault,
    WorkerTimeout,
)
from repro.service.routing import ReplicaRouter
from repro.service.supervisor import (
    SupervisorConfig,
    WorkerSupervisor,
    shard_estimates,
)
from repro.service.wire import RequestFrame, ResponseFrame

#: Transport planes a backend may offer.  The thread backend is always
#: ``inline``; the process backend chooses between ``pipe`` and
#: ``ring`` (its default).
SHARD_TRANSPORTS = ("inline", "pipe", "ring")


@runtime_checkable
class ShardTransport(Protocol):
    """How request/response frames move between coordinator and workers.

    ``serial`` declares whether the transport multiplexes a byte stream
    per worker (pipes, rings) — then the coordinator serialises batches
    over it — or carries frames by reference with per-frame completion
    (inline), where concurrent batches may interleave freely.
    """

    name: str
    serial: bool

    def send(
        self, worker: int, frame: RequestFrame, *, timeout: Optional[float] = None
    ) -> None: ...

    def recv(
        self, worker: int, seq: int, *, timeout: Optional[float] = None
    ) -> ResponseFrame: ...

    def stats(self) -> dict: ...

    def close(self) -> None: ...


class FrameStreamTransport:
    """Recv bookkeeping shared by byte-stream transports (pipe, ring).

    Subclasses implement ``_recv_raw(worker) -> ResponseFrame`` (and
    ``send``, which must call :meth:`note_sent`); this base matches
    frames to the sequence number the coordinator is waiting on.
    Frames for any *other still-outstanding* exchange on the same
    worker are parked — a failover recv can legitimately drain a
    healthy worker's queue out of dispatch order, so "smaller seq"
    does not mean "stale".  Frames for unknown/aborted exchanges are
    discarded, mirroring the stale-reply rule of the pickled protocol
    this replaces.
    """

    serial = True

    def __init__(self, num_workers: int) -> None:
        self._pending: list[dict[int, ResponseFrame]] = [
            {} for _ in range(num_workers)
        ]
        self._expected: list[set[int]] = [set() for _ in range(num_workers)]

    def _recv_raw(
        self, worker: int, timeout: Optional[float] = None
    ) -> ResponseFrame:  # pragma: no cover
        raise NotImplementedError

    def note_sent(self, worker: int, seq: int) -> None:
        """Record a dispatched exchange so its answer is parkable."""
        self._expected[worker].add(seq)

    def recv(
        self, worker: int, seq: int, *, timeout: Optional[float] = None
    ) -> ResponseFrame:
        pending = self._pending[worker]
        expected = self._expected[worker]
        frame = pending.pop(seq, None)
        if frame is not None:
            expected.discard(seq)
            return frame
        while True:
            frame = self._recv_raw(worker, timeout)
            if frame.seq == seq:
                expected.discard(seq)
                return frame
            if frame.seq in expected:
                pending[frame.seq] = frame
            # else: stale frame from an aborted exchange — discard.
            # Retried sub-batches always carry a fresh seq, so a late
            # answer to an abandoned exchange lands here and can never
            # be mistaken for the retry's answer.

    def clear_pending(self, worker: int) -> None:
        """Forget parked frames for a worker whose stream was reset."""
        self._pending[worker].clear()
        self._expected[worker].clear()

    def abandon(self, worker: int, seq: int) -> None:
        """Stop expecting one exchange (its budget ran out mid-wait).

        The worker is healthy and will still push the answer; removing
        the seq from the expected set makes that late frame a stale one
        — discarded on arrival instead of parked forever.
        """
        self._expected[worker].discard(seq)
        self._pending[worker].pop(seq, None)

    def stats(self) -> dict:
        return {}


class FlatShardedBase:
    """Coordinator-side state shared by the shard backends.

    Args:
        index: a built :class:`~repro.core.index.VicinityIndex`, or
            ``None`` when ``flat`` is given.
        num_shards: shard count (workers = ``num_shards * replicas``).
        placement: ``"hash"`` or ``"range"`` node placement.
        replicate_tables: model landmark tables as replicated on every
            shard (no round trip for landmark-target hits).
        flat: a prepared :class:`FlatIndex` (used by :meth:`from_saved`).
        sub_batch: split each shard's share of a batch into chunks of at
            most this many pairs (``0`` = one chunk per shard per
            batch).  Smaller chunks overlap dispatch with execution and
            give the replica router something to balance.
        replicas: interchangeable workers per shard; sub-batches go to
            the replica with the least outstanding pairs.
        kernels: kernel tier for the shard engines — ``"numpy"``,
            ``"native"`` or ``None``/``"auto"`` (pick native when the
            compiled extension is available and the layout matches).
        supervise: enable the fault-tolerance layer — ``True`` for
            defaults, or a :class:`~repro.service.supervisor.SupervisorConfig`.
            Off (``None``/``False``, the default) a worker fault is a
            terminal :class:`QueryError`, exactly as before.
        recv_deadline_s: sub-batch send/recv deadline *without*
            supervision — a wedged worker then raises a typed
            :class:`~repro.exceptions.WorkerTimeout` instead of hanging
            the coordinator forever.  Ignored when ``supervise`` is on
            (the supervisor's ``deadline_s`` governs).
    """

    def __init__(
        self,
        index,
        num_shards: int,
        *,
        placement: str = "hash",
        replicate_tables: bool = False,
        flat: Optional[FlatIndex] = None,
        sub_batch: int = 0,
        replicas: int = 1,
        kernels: Optional[str] = None,
        supervise=None,
        recv_deadline_s: Optional[float] = None,
    ) -> None:
        if index is not None:
            flat = FlatIndex.from_index(index)
        elif flat is None:
            raise QueryError("pass a built index or a prepared FlatIndex")
        if num_shards < 1:
            raise QueryError("num_shards must be at least 1")
        if sub_batch < 0:
            raise QueryError("sub_batch must be >= 0")
        if replicas < 1:
            raise QueryError("replicas must be at least 1")
        self.flat = flat
        self.kernels = flat.set_kernels(kernels)
        self.num_shards = num_shards
        self.placement = placement
        self.replicate_tables = replicate_tables
        self.sub_batch = int(sub_batch)
        self.replicas = int(replicas)
        self.n = flat.n
        self.log = MessageLog()
        self._store_paths = flat.store_paths
        self._assign = shard_assignment(flat.n, num_shards, placement)
        self._table_landmarks = flat.landmark_ids.tolist() if flat.has_tables else []
        self._router = ReplicaRouter(num_shards, self.replicas)
        self._seq = itertools.count(1)
        self._log_lock = threading.Lock()
        self._batch_lock = threading.Lock()
        self._transport: Optional[ShardTransport] = None
        self._closed = False
        self.recv_deadline_s = recv_deadline_s
        self.supervisor: Optional[WorkerSupervisor] = None
        if supervise:
            config = (
                supervise
                if isinstance(supervise, SupervisorConfig)
                else SupervisorConfig()
            )
            self.supervisor = WorkerSupervisor(
                num_shards, self.replicas, config
            )
        # Bumped whenever a worker is put down or restarted; dispatches
        # record the epoch they were sent under, so the collect loop can
        # tell that a still-awaited response died with the old worker.
        self._worker_epoch = [0] * (num_shards * self.replicas)
        # Deadline-budget accounting (transport_stats()["slo"]).  The
        # clock is an instance attribute so deadline tests can inject a
        # fake one.
        self._clock = time.monotonic
        self._slo_counters = {
            "budget_batches": 0,
            "clamped_waits": 0,
            "expired_pairs": 0,
            "degraded_pairs": 0,
            "skipped_retries": 0,
        }

    @classmethod
    def from_saved(cls, path, num_shards: int, *, mmap: bool = False, **kwargs):
        """Build straight from a saved index (``save_index`` output).

        Loads only the flattened arrays — no per-node dict
        materialisation — so startup is dominated by file I/O.  With
        ``mmap=True`` (flat-container stores) even that disappears:
        the arrays are read-only memory-mapped views, startup is O(n)
        in the offset diffs, and every process serving the same file
        shares pages through the OS page cache.
        """
        from repro.io.oracle_store import load_flat_index

        return cls(None, num_shards, flat=load_flat_index(path, mmap=mmap), **kwargs)

    # ------------------------------------------------------------------
    # placement / accounting
    # ------------------------------------------------------------------
    def shard_of(self, u: int) -> int:
        """Return the shard owning node ``u``."""
        self._check_node(u)
        return int(self._assign[u])

    def shard_reports(self) -> list[ShardReport]:
        """Per-shard memory accounting (matches the simulation's)."""
        nodes = np.bincount(self._assign, minlength=self.num_shards)
        vic_entries = np.bincount(
            self._assign, weights=self.flat.member_counts, minlength=self.num_shards
        )
        boundary_entries = np.bincount(
            self._assign, weights=self.flat.boundary_counts, minlength=self.num_shards
        )
        reports = [
            ShardReport(
                shard_id=k,
                nodes=int(nodes[k]),
                vicinity_entries=int(vic_entries[k]),
                boundary_entries=int(boundary_entries[k]),
            )
            for k in range(self.num_shards)
        ]
        for landmark in self._table_landmarks:
            if self.replicate_tables:
                for report in reports:
                    report.table_entries += self.n
            else:
                reports[int(self._assign[landmark])].table_entries += self.n
        return reports

    def balance_summary(self) -> dict[str, float]:
        """Load-balance metrics over shard memory sizes."""
        return balance_summary_from_reports(self.shard_reports())

    # ------------------------------------------------------------------
    # the coordinator loop (shared by every backend)
    # ------------------------------------------------------------------
    def query_batch(self, pairs, *, with_path: bool = False, budget_s=None):
        """Answer a batch through the transport plane.

        The batch is partitioned by ``shard_of(source)``, each shard's
        share split into ``sub_batch``-pair request frames routed to its
        least-loaded replica, and the response frames decoded back into
        input order.  Wire accounting lands in :attr:`log` exactly as
        the thread backend and the simulation record it — the modelled
        §5 round trips ride inside the response frames, so the totals
        are independent of which transport moved them.

        ``budget_s`` is the batch's remaining end-to-end deadline
        budget (from the network edge's tightest member deadline).
        Every send/recv wait is clamped to the residual budget, a
        failover retry that cannot fit it is skipped, and pairs whose
        budget expires mid-batch are answered from the landmark
        estimate (``method="estimate"``) when the index carries tables
        — a deadline miss is the request's state, not a worker fault,
        so no breaker or restart machinery is tripped by it.
        """
        pair_list, homes, flat_pairs = self._validate_batch(pairs, with_path)
        if not pair_list:
            return []
        transport = self._transport
        by_shard = self._partition(homes)
        results = [None] * len(pair_list)
        local = remote = 0
        trip_count = trip_bytes = 0
        errors: list[str] = []
        exec_ns = 0
        sup = self.supervisor
        deadline = self._deadline_s()
        budget_end = None
        if budget_s is not None:
            budget_end = self._clock() + max(float(budget_s), 0.0)
            self._slo_counters["budget_batches"] += 1
        degraded: list = []  # position arrays answered by the estimate lane
        guard = self._batch_lock if transport.serial else nullcontext()
        with guard:
            t0 = time.perf_counter()
            sent = []  # (worker, seq, positions, shard, replica, epoch, exc)
            for shard_id, positions in by_shard.items():
                if self._budget_spent(budget_end):
                    # Out of budget before this shard was even reached:
                    # estimate (or error) without paying any dispatch.
                    self._slo_counters["expired_pairs"] += len(positions)
                    if self._budget_degrade():
                        degraded.append(positions)
                    else:
                        errors.append(
                            f"deadline budget exhausted before dispatch "
                            f"to shard {shard_id}"
                        )
                    continue
                if sup is not None and not sup.admit(shard_id):
                    # Breaker open: answer from the estimate without
                    # paying dispatch, deadline or retry for a shard
                    # known to be dark.
                    if self._can_degrade():
                        degraded.append(positions)
                    else:
                        errors.append(
                            f"shard {shard_id} is unavailable "
                            f"(circuit breaker open)"
                        )
                    continue
                for chunk in self._chunks(positions):
                    replica = self._router.pick(
                        shard_id, exclude=self._quarantined_replicas(shard_id)
                    )
                    worker = shard_id * self.replicas + replica
                    seq = next(self._seq)
                    frame = RequestFrame(seq, flat_pairs[chunk], with_path)
                    epoch = self._worker_epoch[worker]
                    send_exc = None
                    try:
                        transport.send(
                            worker,
                            frame,
                            timeout=self._clamped_deadline(deadline, budget_end),
                        )
                    except WorkerFault as exc:
                        if sup is None:
                            raise
                        self._fault_worker(worker, exc)
                        send_exc = exc
                    else:
                        self._router.dispatched(
                            shard_id, replica, len(chunk), frame.nbytes
                        )
                    sent.append(
                        (worker, seq, chunk, shard_id, replica, epoch, send_exc)
                    )
            t1 = time.perf_counter()
            # Every dispatched frame owes exactly one response; drain all
            # of them even when one reports an error, so a failed batch
            # never leaves frames queued for the next one.  Failed
            # sub-batches take the failover path: re-dispatch to a
            # surviving (or restarted) replica, then fall back to the
            # breaker + estimate lane.
            for worker, seq, positions, shard_id, replica, epoch, exc in sent:
                resp = None
                failure = exc
                if failure is None:
                    if self._worker_epoch[worker] != epoch:
                        # The worker was put down after this dispatch;
                        # its stream was reset and this response will
                        # never arrive — skip straight to failover
                        # instead of burning a deadline on it.
                        self._router.completed(
                            shard_id, replica, len(positions), 0
                        )
                        failure = WorkerDied(worker, "was restarted mid-batch")
                    else:
                        try:
                            resp = transport.recv(
                                worker,
                                seq,
                                timeout=self._clamped_deadline(deadline, budget_end),
                            )
                        except WorkerFault as fault:
                            self._router.completed(
                                shard_id, replica, len(positions), 0
                            )
                            if isinstance(fault, WorkerTimeout) and (
                                self._budget_spent(budget_end)
                            ):
                                # The wait ran out of *request* budget,
                                # not worker patience: the worker is
                                # presumed healthy, its late answer is
                                # abandoned (stale on arrival), and the
                                # pairs degrade to the estimate lane.
                                if hasattr(transport, "abandon"):
                                    transport.abandon(worker, seq)
                                self._slo_counters["expired_pairs"] += len(
                                    positions
                                )
                                if self._budget_degrade():
                                    degraded.append(positions)
                                else:
                                    errors.append(
                                        f"deadline budget exhausted awaiting "
                                        f"shard {shard_id}"
                                    )
                                continue
                            if sup is None:
                                errors.append(str(fault))
                                continue
                            self._fault_worker(worker, fault)
                            failure = fault
                        except QueryError as fault:
                            self._router.completed(
                                shard_id, replica, len(positions), 0
                            )
                            errors.append(str(fault))
                            continue
                        else:
                            self._router.completed(
                                shard_id, replica, len(positions), resp.nbytes
                            )
                            if sup is not None:
                                sup.note_ok(worker)
                if resp is None and sup is not None:
                    resp = self._failover(
                        shard_id, replica, positions, flat_pairs,
                        with_path, deadline, budget_end=budget_end,
                    )
                if resp is None:
                    if (
                        budget_end is not None
                        and self._budget_spent(budget_end)
                        and self._budget_degrade()
                    ):
                        # The failover budget ran out with the clock:
                        # honour the deadline contract with an estimate
                        # (no breaker — the failure may simply be that
                        # there was no time left to retry).
                        self._slo_counters["expired_pairs"] += len(positions)
                        degraded.append(positions)
                        continue
                    if sup is not None:
                        sup.breaker_failure(shard_id)
                        if self._can_degrade():
                            degraded.append(positions)
                            continue
                    errors.append(
                        str(failure)
                        if failure is not None
                        else f"shard {shard_id} is unavailable"
                    )
                    continue
                if sup is not None:
                    sup.breaker_success(shard_id)
                if not resp.ok:
                    errors.append(f"shard worker {worker} failed: {resp.error}")
                    continue
                decoded = resp.to_results(
                    flat_pairs[positions].tolist(), integral=self.flat.integral
                )
                for position, result in zip(positions.tolist(), decoded):
                    results[position] = result
                local += resp.local
                remote += resp.remote
                trip_count += resp.trips.shape[0]
                trip_bytes += int(resp.trips.sum())
                exec_ns += resp.exec_ns
                if resp.cache_stats is not None:
                    self._note_worker_cache(worker, resp.cache_stats)
            for positions in degraded:
                estimates = shard_estimates(self.flat, flat_pairs[positions])
                for position, result in zip(positions.tolist(), estimates):
                    results[position] = result
                self._slo_counters["degraded_pairs"] += len(positions)
                if sup is not None:
                    sup.note_degraded(len(positions))
            t2 = time.perf_counter()
            if sup is not None:
                self._revive_dead_workers()
        self._router.observe_batch(t1 - t0, exec_ns / 1e9, t2 - t1)
        if errors:
            raise QueryError("; ".join(errors))
        with self._log_lock:
            self._fold_log(local, remote, trip_count, trip_bytes)
        return results

    # ------------------------------------------------------------------
    # supervision: failover, restart and degrade (see service/supervisor)
    # ------------------------------------------------------------------
    def _deadline_s(self) -> Optional[float]:
        """The effective per-sub-batch deadline (None = wait forever)."""
        if self.supervisor is not None:
            return self.supervisor.config.deadline_s
        return self.recv_deadline_s

    # ------------------------------------------------------------------
    # deadline budgets (the per-request deadline threaded down from the
    # network edge — see repro.service.slo)
    # ------------------------------------------------------------------
    def _budget_residual(self, budget_end) -> Optional[float]:
        """Seconds of batch budget left (``None`` = unbounded)."""
        if budget_end is None:
            return None
        return budget_end - self._clock()

    def _budget_spent(self, budget_end) -> bool:
        return budget_end is not None and budget_end - self._clock() <= 0.0

    def _clamped_deadline(self, deadline, budget_end) -> Optional[float]:
        """A send/recv timeout clamped to the remaining batch budget."""
        if budget_end is None:
            return deadline
        residual = max(budget_end - self._clock(), 1e-3)
        if deadline is None or residual < deadline:
            self._slo_counters["clamped_waits"] += 1
            return residual
        return deadline

    def _budget_degrade(self) -> bool:
        """May budget-expired pairs be answered from the estimate lane?

        Unlike :meth:`_can_degrade` this needs no supervisor: a blown
        budget is the *request's* state, not a worker fault, and a
        degraded estimate honours the deadline contract where a typed
        error would not.
        """
        return self.flat.has_tables

    def _can_degrade(self) -> bool:
        sup = self.supervisor
        return (
            sup is not None and sup.config.degrade and self.flat.has_tables
        )

    def _quarantined_replicas(self, shard_id: int):
        sup = self.supervisor
        if sup is None or self.replicas == 1:
            return ()
        base = shard_id * self.replicas
        return {
            r for r in range(self.replicas) if sup.is_quarantined(base + r)
        }

    def _failover(
        self, shard_id, failed_replica, positions, flat_pairs, with_path,
        deadline, *, budget_end=None,
    ) -> Optional[ResponseFrame]:
        """Re-dispatch one failed sub-batch until it answers or the
        retry budget runs out.

        Each attempt prefers a different surviving replica (fresh
        sequence number — the abandoned exchange's late answer, if any,
        is discarded by the stale-frame rule), restarts dead workers
        when the budget allows, and backs off exponentially between
        attempts.  An attempt whose backoff cannot fit the remaining
        *deadline* budget is skipped outright (the caller degrades to
        the estimate lane instead of burning the clock).  Returns the
        response frame, or ``None`` when the shard stayed dark.
        """
        sup = self.supervisor
        transport = self._transport
        last_replica = failed_replica
        for attempt in range(sup.config.retries):
            if not sup.config.retry_fits(
                attempt, self._budget_residual(budget_end)
            ):
                self._slo_counters["skipped_retries"] += 1
                return None
            backoff = sup.config.backoff_s(attempt)
            if backoff > 0:
                time.sleep(backoff)
            exclude = set(self._quarantined_replicas(shard_id))
            if self.replicas > 1:
                exclude.add(last_replica)
            replica = self._router.pick(shard_id, exclude=exclude)
            worker = shard_id * self.replicas + replica
            last_replica = replica
            if not self._ensure_worker(worker):
                continue
            seq = next(self._seq)
            frame = RequestFrame(seq, flat_pairs[positions], with_path)
            sup.note_retry()
            try:
                transport.send(
                    worker,
                    frame,
                    timeout=self._clamped_deadline(deadline, budget_end),
                )
            except WorkerFault as exc:
                self._fault_worker(worker, exc)
                continue
            self._router.dispatched(
                shard_id, replica, len(positions), frame.nbytes
            )
            try:
                resp = transport.recv(
                    worker,
                    seq,
                    timeout=self._clamped_deadline(deadline, budget_end),
                )
            except WorkerFault as exc:
                self._router.completed(shard_id, replica, len(positions), 0)
                if isinstance(exc, WorkerTimeout) and self._budget_spent(
                    budget_end
                ):
                    # Budget ran out mid-retry: the replica is presumed
                    # healthy — abandon the exchange and let the caller
                    # degrade instead of killing a worker for our clock.
                    if hasattr(transport, "abandon"):
                        transport.abandon(worker, seq)
                    return None
                self._fault_worker(worker, exc)
                continue
            self._router.completed(
                shard_id, replica, len(positions), resp.nbytes
            )
            sup.note_ok(worker)
            if replica != failed_replica:
                sup.note_failover()
            return resp
        return None

    def _fault_worker(self, worker: int, exc: BaseException) -> None:
        """After a transport fault: count it and put the worker down.

        A wedged worker's stream can be desynchronised (a ring read may
        have stopped mid-frame), so the worker is killed outright — the
        next attempt to route to it restarts it with a reset transport,
        which is the only state we can trust again.
        """
        sup = self.supervisor
        sup.note_fault(worker, exc)
        try:
            self.kill_worker(worker)
        except Exception:
            pass
        self._worker_epoch[worker] += 1
        transport = self._transport
        if hasattr(transport, "clear_pending"):
            transport.clear_pending(worker)

    def _revive_dead_workers(self) -> None:
        """End-of-batch sweep: restart every faulted worker in budget.

        Failover answers the batch that observed a death from the
        surviving replicas; this sweep brings the dead worker itself
        back before the batch returns, so the next batch starts at
        full replica strength instead of lazily resurrecting workers
        only when routing happens to land on them.
        """
        sup = self.supervisor
        for worker in range(len(self._worker_epoch)):
            if sup.is_quarantined(worker) or self.worker_alive(worker):
                continue
            self._supervised_restart(worker)

    def _ensure_worker(self, worker: int) -> bool:
        """Make a worker routable: alive and not quarantined."""
        sup = self.supervisor
        if sup.is_quarantined(worker):
            return False
        if self.worker_alive(worker):
            return True
        return self._supervised_restart(worker)

    def _supervised_restart(self, worker: int) -> bool:
        """Restart a dead worker within budget, else quarantine it."""
        sup = self.supervisor
        if not sup.allow_restart(worker):
            sup.quarantine(worker)
            return False
        try:
            ok = self.restart_worker(worker)
        except Exception:
            ok = False
        if not ok:
            sup.quarantine(worker)
            return False
        self._worker_epoch[worker] += 1
        sup.note_restart(worker)
        return True

    # Backend hooks the supervision layer drives.  The base versions
    # describe a backend whose workers cannot die (and cannot be
    # restarted); the thread and process backends override what applies.
    def worker_alive(self, worker: int) -> bool:
        """Is the worker's execution substrate still up?"""
        return True

    def kill_worker(self, worker: int) -> None:
        """Force a faulted worker down so a restart starts clean."""

    def restart_worker(self, worker: int) -> bool:
        """Bring a dead worker back; returns False when unsupported."""
        return False

    def _start_supervisor(self) -> None:
        """Start the heartbeat monitor once the transport is live."""
        if self.supervisor is not None:
            self.supervisor.start_monitor(self)

    def _stop_supervisor(self) -> None:
        if self.supervisor is not None:
            self.supervisor.stop_monitor()

    def _chunks(self, positions: list[int]):
        """Split one shard's batch positions into sub-batch chunks."""
        size = self.sub_batch
        if size <= 0 or len(positions) <= size:
            yield positions
            return
        for start in range(0, len(positions), size):
            yield positions[start:start + size]

    def _note_worker_cache(self, worker: int, stats: dict) -> None:
        """Hook for backends with worker-side caches (procpool)."""

    def transport_stats(self) -> dict:
        """Transport-plane telemetry: routing state plus the time split.

        Folded into ``snapshot()["shards"]`` by the serving layer;
        ``dispatch_s``/``execute_s``/``collect_s`` split coordinator
        overhead from worker execute time (summed across workers), and
        ``per_shard`` carries depth, traffic and frame-byte figures per
        shard.
        """
        stats = {
            "transport": self._transport.name if self._transport else None,
            "kernels": self.kernels,
            "replicas": self.replicas,
            "sub_batch": self.sub_batch,
        }
        stats.update(self._router.snapshot())
        if self._transport is not None:
            stats.update(self._transport.stats())
        if self.supervisor is not None:
            stats["supervisor"] = self.supervisor.snapshot()
        # Deadline-budget accounting: batches that carried a budget,
        # waits clamped to it, pairs it expired on, estimate-lane
        # answers, and failover retries skipped for lack of budget.
        stats["slo"] = dict(self._slo_counters)
        return stats

    # ------------------------------------------------------------------
    # batch plumbing
    # ------------------------------------------------------------------
    def _validate_batch(self, pairs, with_path: bool):
        """Normalise and validate a batch.

        Returns ``(pair_list, homes, flat_pairs)`` — the int-tuple list,
        each pair's home shard, and the ``(m, 2)`` int64 array request
        frames slice from.
        """
        if self._closed:
            raise QueryError("service is closed")
        pair_list = pairs if isinstance(pairs, (list, np.ndarray)) else list(pairs)
        if not len(pair_list):
            return [], None, None
        if with_path and not self._store_paths:
            raise QueryError("index was built with store_paths=False")
        flat_pairs = np.asarray(pair_list, dtype=np.int64).reshape(-1, 2)
        out_of_range = (flat_pairs < 0) | (flat_pairs >= self.n)
        if out_of_range.any():
            raise NodeNotFoundError(int(flat_pairs[out_of_range][0]), self.n)
        return pair_list, self._assign[flat_pairs[:, 0]], flat_pairs

    @staticmethod
    def _partition(homes) -> dict[int, np.ndarray]:
        """Group batch positions by home shard, preserving input order.

        One stable argsort instead of a per-position Python loop; the
        position arrays keep input order within each shard, so frames
        and result scatter are unchanged.
        """
        order = np.argsort(homes, kind="stable")
        shard_ids, starts = np.unique(homes[order], return_index=True)
        return dict(zip(shard_ids.tolist(), np.split(order, starts[1:])))

    def _fold_log(
        self, local: int, remote: int, trip_count: int, trip_bytes: int
    ) -> None:
        # Folded arithmetic of MessageLog.record_round_trip over the
        # whole batch: two messages and two control headers per trip.
        self.log.local_queries += local
        self.log.remote_queries += remote
        self.log.messages += 2 * trip_count
        self.log.bytes += 2 * BYTES_PER_CONTROL * trip_count + trip_bytes

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.n:
            raise NodeNotFoundError(u, self.n)

    def query(self, source: int, target: int, *, with_path: bool = False):
        """Answer one pair on its home shard's worker."""
        return self.query_batch([(source, target)], with_path=with_path)[0]
