"""Shared state, transport plane and accounting of the shard backends.

Both §5 executors — the thread-backed
:class:`~repro.service.sharded.ShardedService` and the process-backed
:class:`~repro.service.procpool.ProcessShardedService` — serve the same
flattened arrays through the same
:class:`~repro.core.engine.ShardQueryEngine`; what differs is only
*where* the shard workers run and *how* frames reach them.  Everything
else lives here once:

* placement, per-shard memory accounting, batch validation/partitioning
  and the dict-free ``from_saved`` constructor (as before);
* the :class:`ShardTransport` protocol — ``send(worker, RequestFrame)``
  / ``recv(worker, seq) -> ResponseFrame`` — that each backend
  implements (inline thread dispatch, frame pipes, shared-memory
  rings);
* the **one** coordinator ``query_batch`` loop: validate, partition by
  home shard, split into ``sub_batch``-sized chunks, route each chunk
  to the least-loaded replica (:class:`~repro.service.routing.ReplicaRouter`),
  push request frames, then collect/decode response frames and fold the
  §5 wire accounting into :attr:`log`.

Because encoding, decoding and accounting are identical for every
transport, result parity across backends is structural rather than
re-implemented per backend — the transports move opaque frames.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import nullcontext
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from repro.core.flat import FlatIndex
from repro.core.parallel import (
    BYTES_PER_CONTROL,
    MessageLog,
    ShardReport,
    balance_summary_from_reports,
    shard_assignment,
)
from repro.exceptions import NodeNotFoundError, QueryError
from repro.service.routing import ReplicaRouter
from repro.service.wire import RequestFrame, ResponseFrame

#: Transport planes a backend may offer.  The thread backend is always
#: ``inline``; the process backend chooses between ``pipe`` and
#: ``ring`` (its default).
SHARD_TRANSPORTS = ("inline", "pipe", "ring")


@runtime_checkable
class ShardTransport(Protocol):
    """How request/response frames move between coordinator and workers.

    ``serial`` declares whether the transport multiplexes a byte stream
    per worker (pipes, rings) — then the coordinator serialises batches
    over it — or carries frames by reference with per-frame completion
    (inline), where concurrent batches may interleave freely.
    """

    name: str
    serial: bool

    def send(self, worker: int, frame: RequestFrame) -> None: ...

    def recv(self, worker: int, seq: int) -> ResponseFrame: ...

    def stats(self) -> dict: ...

    def close(self) -> None: ...


class FrameStreamTransport:
    """Recv bookkeeping shared by byte-stream transports (pipe, ring).

    Subclasses implement ``_recv_raw(worker) -> ResponseFrame`` (and
    ``send``); this base matches frames to the sequence number the
    coordinator is waiting on.  Frames for *later* sequence numbers are
    parked (possible when several chunks target one worker); frames for
    unknown/aborted exchanges are discarded, mirroring the stale-reply
    rule of the pickled protocol this replaces.
    """

    serial = True

    def __init__(self, num_workers: int) -> None:
        self._pending: list[dict[int, ResponseFrame]] = [
            {} for _ in range(num_workers)
        ]

    def _recv_raw(self, worker: int) -> ResponseFrame:  # pragma: no cover
        raise NotImplementedError

    def recv(self, worker: int, seq: int) -> ResponseFrame:
        pending = self._pending[worker]
        frame = pending.pop(seq, None)
        if frame is not None:
            return frame
        while True:
            frame = self._recv_raw(worker)
            if frame.seq == seq:
                return frame
            if frame.seq > seq:
                pending[frame.seq] = frame
            # else: stale frame from an aborted exchange — discard.

    def stats(self) -> dict:
        return {}


class FlatShardedBase:
    """Coordinator-side state shared by the shard backends.

    Args:
        index: a built :class:`~repro.core.index.VicinityIndex`, or
            ``None`` when ``flat`` is given.
        num_shards: shard count (workers = ``num_shards * replicas``).
        placement: ``"hash"`` or ``"range"`` node placement.
        replicate_tables: model landmark tables as replicated on every
            shard (no round trip for landmark-target hits).
        flat: a prepared :class:`FlatIndex` (used by :meth:`from_saved`).
        sub_batch: split each shard's share of a batch into chunks of at
            most this many pairs (``0`` = one chunk per shard per
            batch).  Smaller chunks overlap dispatch with execution and
            give the replica router something to balance.
        replicas: interchangeable workers per shard; sub-batches go to
            the replica with the least outstanding pairs.
        kernels: kernel tier for the shard engines — ``"numpy"``,
            ``"native"`` or ``None``/``"auto"`` (pick native when the
            compiled extension is available and the layout matches).
    """

    def __init__(
        self,
        index,
        num_shards: int,
        *,
        placement: str = "hash",
        replicate_tables: bool = False,
        flat: Optional[FlatIndex] = None,
        sub_batch: int = 0,
        replicas: int = 1,
        kernels: Optional[str] = None,
    ) -> None:
        if index is not None:
            flat = FlatIndex.from_index(index)
        elif flat is None:
            raise QueryError("pass a built index or a prepared FlatIndex")
        if num_shards < 1:
            raise QueryError("num_shards must be at least 1")
        if sub_batch < 0:
            raise QueryError("sub_batch must be >= 0")
        if replicas < 1:
            raise QueryError("replicas must be at least 1")
        self.flat = flat
        self.kernels = flat.set_kernels(kernels)
        self.num_shards = num_shards
        self.placement = placement
        self.replicate_tables = replicate_tables
        self.sub_batch = int(sub_batch)
        self.replicas = int(replicas)
        self.n = flat.n
        self.log = MessageLog()
        self._store_paths = flat.store_paths
        self._assign = shard_assignment(flat.n, num_shards, placement)
        self._table_landmarks = flat.landmark_ids.tolist() if flat.has_tables else []
        self._router = ReplicaRouter(num_shards, self.replicas)
        self._seq = itertools.count(1)
        self._log_lock = threading.Lock()
        self._batch_lock = threading.Lock()
        self._transport: Optional[ShardTransport] = None
        self._closed = False

    @classmethod
    def from_saved(cls, path, num_shards: int, *, mmap: bool = False, **kwargs):
        """Build straight from a saved index (``save_index`` output).

        Loads only the flattened arrays — no per-node dict
        materialisation — so startup is dominated by file I/O.  With
        ``mmap=True`` (flat-container stores) even that disappears:
        the arrays are read-only memory-mapped views, startup is O(n)
        in the offset diffs, and every process serving the same file
        shares pages through the OS page cache.
        """
        from repro.io.oracle_store import load_flat_index

        return cls(None, num_shards, flat=load_flat_index(path, mmap=mmap), **kwargs)

    # ------------------------------------------------------------------
    # placement / accounting
    # ------------------------------------------------------------------
    def shard_of(self, u: int) -> int:
        """Return the shard owning node ``u``."""
        self._check_node(u)
        return int(self._assign[u])

    def shard_reports(self) -> list[ShardReport]:
        """Per-shard memory accounting (matches the simulation's)."""
        nodes = np.bincount(self._assign, minlength=self.num_shards)
        vic_entries = np.bincount(
            self._assign, weights=self.flat.member_counts, minlength=self.num_shards
        )
        boundary_entries = np.bincount(
            self._assign, weights=self.flat.boundary_counts, minlength=self.num_shards
        )
        reports = [
            ShardReport(
                shard_id=k,
                nodes=int(nodes[k]),
                vicinity_entries=int(vic_entries[k]),
                boundary_entries=int(boundary_entries[k]),
            )
            for k in range(self.num_shards)
        ]
        for landmark in self._table_landmarks:
            if self.replicate_tables:
                for report in reports:
                    report.table_entries += self.n
            else:
                reports[int(self._assign[landmark])].table_entries += self.n
        return reports

    def balance_summary(self) -> dict[str, float]:
        """Load-balance metrics over shard memory sizes."""
        return balance_summary_from_reports(self.shard_reports())

    # ------------------------------------------------------------------
    # the coordinator loop (shared by every backend)
    # ------------------------------------------------------------------
    def query_batch(self, pairs, *, with_path: bool = False):
        """Answer a batch through the transport plane.

        The batch is partitioned by ``shard_of(source)``, each shard's
        share split into ``sub_batch``-pair request frames routed to its
        least-loaded replica, and the response frames decoded back into
        input order.  Wire accounting lands in :attr:`log` exactly as
        the thread backend and the simulation record it — the modelled
        §5 round trips ride inside the response frames, so the totals
        are independent of which transport moved them.
        """
        pair_list, homes, flat_pairs = self._validate_batch(pairs, with_path)
        if not pair_list:
            return []
        transport = self._transport
        by_shard = self._partition(homes)
        results = [None] * len(pair_list)
        local = remote = 0
        trip_count = trip_bytes = 0
        errors: list[str] = []
        exec_ns = 0
        guard = self._batch_lock if transport.serial else nullcontext()
        with guard:
            t0 = time.perf_counter()
            sent = []  # (worker, seq, positions, shard, replica)
            for shard_id, positions in by_shard.items():
                for chunk in self._chunks(positions):
                    replica = self._router.pick(shard_id)
                    worker = shard_id * self.replicas + replica
                    seq = next(self._seq)
                    frame = RequestFrame(seq, flat_pairs[chunk], with_path)
                    transport.send(worker, frame)
                    self._router.dispatched(
                        shard_id, replica, len(chunk), frame.nbytes
                    )
                    sent.append((worker, seq, chunk, shard_id, replica))
            t1 = time.perf_counter()
            # Every dispatched frame owes exactly one response; drain all
            # of them even when one reports an error, so a failed batch
            # never leaves frames queued for the next one.
            for worker, seq, positions, shard_id, replica in sent:
                try:
                    resp = transport.recv(worker, seq)
                except QueryError as exc:
                    self._router.completed(shard_id, replica, len(positions), 0)
                    errors.append(str(exc))
                    continue
                self._router.completed(
                    shard_id, replica, len(positions), resp.nbytes
                )
                if not resp.ok:
                    errors.append(f"shard worker {worker} failed: {resp.error}")
                    continue
                decoded = resp.to_results(
                    flat_pairs[positions].tolist(), integral=self.flat.integral
                )
                for position, result in zip(positions.tolist(), decoded):
                    results[position] = result
                local += resp.local
                remote += resp.remote
                trip_count += resp.trips.shape[0]
                trip_bytes += int(resp.trips.sum())
                exec_ns += resp.exec_ns
                if resp.cache_stats is not None:
                    self._note_worker_cache(worker, resp.cache_stats)
            t2 = time.perf_counter()
        self._router.observe_batch(t1 - t0, exec_ns / 1e9, t2 - t1)
        if errors:
            raise QueryError("; ".join(errors))
        with self._log_lock:
            self._fold_log(local, remote, trip_count, trip_bytes)
        return results

    def _chunks(self, positions: list[int]):
        """Split one shard's batch positions into sub-batch chunks."""
        size = self.sub_batch
        if size <= 0 or len(positions) <= size:
            yield positions
            return
        for start in range(0, len(positions), size):
            yield positions[start:start + size]

    def _note_worker_cache(self, worker: int, stats: dict) -> None:
        """Hook for backends with worker-side caches (procpool)."""

    def transport_stats(self) -> dict:
        """Transport-plane telemetry: routing state plus the time split.

        Folded into ``snapshot()["shards"]`` by the serving layer;
        ``dispatch_s``/``execute_s``/``collect_s`` split coordinator
        overhead from worker execute time (summed across workers), and
        ``per_shard`` carries depth, traffic and frame-byte figures per
        shard.
        """
        stats = {
            "transport": self._transport.name if self._transport else None,
            "kernels": self.kernels,
            "replicas": self.replicas,
            "sub_batch": self.sub_batch,
        }
        stats.update(self._router.snapshot())
        if self._transport is not None:
            stats.update(self._transport.stats())
        return stats

    # ------------------------------------------------------------------
    # batch plumbing
    # ------------------------------------------------------------------
    def _validate_batch(self, pairs, with_path: bool):
        """Normalise and validate a batch.

        Returns ``(pair_list, homes, flat_pairs)`` — the int-tuple list,
        each pair's home shard, and the ``(m, 2)`` int64 array request
        frames slice from.
        """
        if self._closed:
            raise QueryError("service is closed")
        pair_list = pairs if isinstance(pairs, (list, np.ndarray)) else list(pairs)
        if not len(pair_list):
            return [], None, None
        if with_path and not self._store_paths:
            raise QueryError("index was built with store_paths=False")
        flat_pairs = np.asarray(pair_list, dtype=np.int64).reshape(-1, 2)
        out_of_range = (flat_pairs < 0) | (flat_pairs >= self.n)
        if out_of_range.any():
            raise NodeNotFoundError(int(flat_pairs[out_of_range][0]), self.n)
        return pair_list, self._assign[flat_pairs[:, 0]], flat_pairs

    @staticmethod
    def _partition(homes) -> dict[int, np.ndarray]:
        """Group batch positions by home shard, preserving input order.

        One stable argsort instead of a per-position Python loop; the
        position arrays keep input order within each shard, so frames
        and result scatter are unchanged.
        """
        order = np.argsort(homes, kind="stable")
        shard_ids, starts = np.unique(homes[order], return_index=True)
        return dict(zip(shard_ids.tolist(), np.split(order, starts[1:])))

    def _fold_log(
        self, local: int, remote: int, trip_count: int, trip_bytes: int
    ) -> None:
        # Folded arithmetic of MessageLog.record_round_trip over the
        # whole batch: two messages and two control headers per trip.
        self.log.local_queries += local
        self.log.remote_queries += remote
        self.log.messages += 2 * trip_count
        self.log.bytes += 2 * BYTES_PER_CONTROL * trip_count + trip_bytes

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.n:
            raise NodeNotFoundError(u, self.n)

    def query(self, source: int, target: int, *, with_path: bool = False):
        """Answer one pair on its home shard's worker."""
        return self.query_batch([(source, target)], with_path=with_path)[0]
