"""Shared state and accounting of the flat-index shard backends.

Both §5 executors — the thread-backed
:class:`~repro.service.sharded.ShardedService` and the process-backed
:class:`~repro.service.procpool.ProcessShardedService` — now serve the
same flattened arrays through the same
:class:`~repro.core.engine.ShardQueryEngine`; what differs is only
*where* the shard workers run.  Everything representation-dependent
lives here once: placement, per-shard memory accounting, batch
validation/partitioning and the dict-free ``from_saved`` constructor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.flat import FlatIndex
from repro.core.parallel import (
    MessageLog,
    ShardReport,
    balance_summary_from_reports,
    shard_assignment,
)
from repro.exceptions import NodeNotFoundError, QueryError


class FlatShardedBase:
    """Coordinator-side state shared by the shard backends.

    Args:
        index: a built :class:`~repro.core.index.VicinityIndex`, or
            ``None`` when ``flat`` is given.
        num_shards: worker/shard count.
        placement: ``"hash"`` or ``"range"`` node placement.
        replicate_tables: model landmark tables as replicated on every
            shard (no round trip for landmark-target hits).
        flat: a prepared :class:`FlatIndex` (used by :meth:`from_saved`).
    """

    def __init__(
        self,
        index,
        num_shards: int,
        *,
        placement: str = "hash",
        replicate_tables: bool = False,
        flat: Optional[FlatIndex] = None,
    ) -> None:
        if index is not None:
            flat = FlatIndex.from_index(index)
        elif flat is None:
            raise QueryError("pass a built index or a prepared FlatIndex")
        if num_shards < 1:
            raise QueryError("num_shards must be at least 1")
        self.flat = flat
        self.num_shards = num_shards
        self.placement = placement
        self.replicate_tables = replicate_tables
        self.n = flat.n
        self.log = MessageLog()
        self._store_paths = flat.store_paths
        self._assign = shard_assignment(flat.n, num_shards, placement)
        self._table_landmarks = flat.landmark_ids.tolist() if flat.has_tables else []
        self._closed = False

    @classmethod
    def from_saved(cls, path, num_shards: int, *, mmap: bool = False, **kwargs):
        """Build straight from a saved index (``save_index`` output).

        Loads only the flattened arrays — no per-node dict
        materialisation — so startup is dominated by file I/O.  With
        ``mmap=True`` (flat-container stores) even that disappears:
        the arrays are read-only memory-mapped views, startup is O(n)
        in the offset diffs, and every process serving the same file
        shares pages through the OS page cache.
        """
        from repro.io.oracle_store import load_flat_index

        return cls(None, num_shards, flat=load_flat_index(path, mmap=mmap), **kwargs)

    # ------------------------------------------------------------------
    # placement / accounting
    # ------------------------------------------------------------------
    def shard_of(self, u: int) -> int:
        """Return the shard owning node ``u``."""
        self._check_node(u)
        return int(self._assign[u])

    def shard_reports(self) -> list[ShardReport]:
        """Per-shard memory accounting (matches the simulation's)."""
        nodes = np.bincount(self._assign, minlength=self.num_shards)
        vic_entries = np.bincount(
            self._assign, weights=self.flat.member_counts, minlength=self.num_shards
        )
        boundary_entries = np.bincount(
            self._assign, weights=self.flat.boundary_counts, minlength=self.num_shards
        )
        reports = [
            ShardReport(
                shard_id=k,
                nodes=int(nodes[k]),
                vicinity_entries=int(vic_entries[k]),
                boundary_entries=int(boundary_entries[k]),
            )
            for k in range(self.num_shards)
        ]
        for landmark in self._table_landmarks:
            if self.replicate_tables:
                for report in reports:
                    report.table_entries += self.n
            else:
                reports[int(self._assign[landmark])].table_entries += self.n
        return reports

    def balance_summary(self) -> dict[str, float]:
        """Load-balance metrics over shard memory sizes."""
        return balance_summary_from_reports(self.shard_reports())

    # ------------------------------------------------------------------
    # batch plumbing
    # ------------------------------------------------------------------
    def _validate_batch(self, pairs, with_path: bool):
        """Normalise and validate a batch; returns ``(pair_list, homes)``."""
        if self._closed:
            raise QueryError("service is closed")
        pair_list = [(int(s), int(t)) for s, t in pairs]
        if not pair_list:
            return [], None
        if with_path and not self._store_paths:
            raise QueryError("index was built with store_paths=False")
        flat_pairs = np.asarray(pair_list, dtype=np.int64)
        out_of_range = (flat_pairs < 0) | (flat_pairs >= self.n)
        if out_of_range.any():
            raise NodeNotFoundError(int(flat_pairs[out_of_range][0]), self.n)
        return pair_list, self._assign[flat_pairs[:, 0]]

    @staticmethod
    def _partition(homes) -> dict[int, list[int]]:
        """Group batch positions by home shard, preserving input order."""
        by_shard: dict[int, list[int]] = {}
        for position, home in enumerate(homes.tolist()):
            by_shard.setdefault(home, []).append(position)
        return by_shard

    def _fold_log(self, local: int, remote: int, trips) -> None:
        self.log.local_queries += local
        self.log.remote_queries += remote
        for payload_bytes in trips:
            self.log.record_round_trip(payload_bytes)

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.n:
            raise NodeNotFoundError(u, self.n)

    def query(self, source: int, target: int, *, with_path: bool = False):
        """Answer one pair on its home shard's worker."""
        return self.query_batch([(source, target)], with_path=with_path)[0]
