"""asyncio network front end: cross-client batching, backpressure, reload.

``serve_stdio`` answers one client, one request at a time.  This module
turns the same :class:`~repro.service.server.ServiceApp` into a network
service many concurrent clients can hit, built around three ideas:

* **coalescing** (:class:`Coalescer`): requests arriving within a
  configurable window — or until a max-batch threshold — are folded
  into a *single* :meth:`BatchExecutor.run
  <repro.service.batch.BatchExecutor.run>` call, regardless of which
  connection they came from.  Cross-client traffic therefore gets the
  executor's dedup/symmetry folding and the flat engine's fused batch
  kernels for free; responses are demultiplexed back to each
  connection in that connection's request order.
* **admission control + backpressure**: the pending queue is bounded.
  Past the *soft* limit new requests are answered immediately with
  ``{"error": "overloaded", "retry_after_ms": ...}`` — or, in degrade
  mode, with a landmark triangulation estimate marked
  ``"degraded": true`` — so clients get a signal instead of latency.
  Past the *hard* limit the server simply stops reading sockets, and
  TCP itself pushes back on senders.
* **deadlines + SLO control** (:mod:`repro.service.slo`): a request
  may carry ``deadline_ms`` (or ``X-Deadline-Ms`` over HTTP); the
  budget threads through the coalescer (which flushes early rather
  than let the window blow the tightest deadline), the executor, and
  the shard coordinator's waits.  A request predicted — or observed —
  to miss its deadline walks the degrade ladder (``exact`` →
  ``estimate`` → shed with ``retry_after_ms``) instead of returning
  late, and an optional AIMD limiter adapts the soft admission limit
  to the measured deadline hit rate.
* **graceful drain / hot reload**: ``{"cmd": "reload", "path": ...}``
  builds a fresh app (by default ``ServiceApp.from_saved(path,
  mmap=True)`` — the zero-copy store from PR 5) off the event loop and
  swaps it behind the coalescer under the dispatch lock, so no
  in-flight or queued request is ever dropped; :meth:`NetServer.drain`
  (wired to SIGTERM by the CLI) stops accepting, answers everything
  already admitted, and closes cleanly.

Two framings share this core (see :mod:`repro.service.protocol`):
newline-delimited JSON over TCP — the ``serve_stdio`` wire protocol,
extended with ``{"cmd": "reload"}`` — and a minimal HTTP/1.1 facade
(``POST /query``, ``GET /stats``).
"""

from __future__ import annotations

import asyncio
import inspect
import random
import time
from functools import partial
from typing import Awaitable, Callable, Optional, Union

import numpy as np

from repro.exceptions import QueryError, ReproError
from repro.service.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    decode_json_line,
    http_response,
    json_line,
    parse_http_head,
    validate_deadline_ms,
)
from repro.service.server import ServiceApp, encode_result
from repro.service.slo import Deadline, SloConfig, SloController
from repro.service.telemetry import LatencyHistogram

#: Default coalescing window in microseconds.
DEFAULT_WINDOW_US = 250.0
#: Default max requests folded into one executor call.
DEFAULT_MAX_BATCH = 1024
#: Default soft admission limit (pending + in-flight requests).
DEFAULT_MAX_PENDING = 4096

#: Floor for the suggested client backoff.  A sub-millisecond coalescing
#: window or a cold latency EWMA would otherwise suggest 1–2 ms retries,
#: which under overload is an instruction to stampede: thousands of
#: clients re-arrive inside the same congestion window that rejected
#: them.  25 ms is still far below human-visible latency but long
#: enough for a drained queue to actually drain.
RETRY_AFTER_FLOOR_MS = 25

#: Sentinel closing a connection's response queue.
_CONN_DONE = object()


class _BatchError:
    """A dispatch failure, delivered through a request's future.

    Futures always *resolve* (never carry exceptions), so an abandoned
    connection cannot leave an un-retrieved exception behind; the
    router turns this marker into a per-request error response.
    """

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class _DeadlineMiss:
    """A request whose deadline expired before its batch dispatched.

    Delivered through the future like :class:`_BatchError`; the server
    walks the degrade ladder for it (estimate or shed) instead of
    executing a query that is already too late.
    """

    __slots__ = ("stage",)

    def __init__(self, stage: str) -> None:
        self.stage = stage


class _Request:
    """One admitted pair waiting in the coalescing queue."""

    __slots__ = ("s", "t", "with_path", "future", "enqueued", "conn", "deadline")

    def __init__(self, s, t, with_path, future, enqueued, conn, deadline) -> None:
        self.s = s
        self.t = t
        self.with_path = with_path
        self.future = future
        self.enqueued = enqueued
        self.conn = conn
        self.deadline = deadline


# ----------------------------------------------------------------------
# degrade mode
# ----------------------------------------------------------------------
def landmark_estimator(app: ServiceApp) -> Optional[Callable]:
    """Build the degrade-mode estimator over an app's landmark tables.

    Returns ``estimate(s, t) -> (distance, probes)`` computing the
    Potamias-style triangulation upper bound ``min_l d(s, l) + d(l, t)``
    from the flat index's stored landmark rows (``None`` distance when
    no landmark reaches both endpoints), or ``None`` when the served
    index carries no tables — the caller then falls back to plain
    overload responses.
    """
    flat = None
    if app.engine is not None:
        flat = app.engine.out
    elif app.oracle is not None:
        flat = app.oracle.engine.out
    elif app.sharded is not None:
        flat = getattr(app.sharded, "flat", None)
    if flat is None or not flat.has_tables:
        return None
    table = flat.table_dist
    integral = flat._integral
    k = int(table.shape[0])

    def estimate(s: int, t: int):
        if s == t:
            return 0, 0
        ds = np.asarray(table[:, s], dtype=np.float64)
        dt = np.asarray(table[:, t], dtype=np.float64)
        ok = (ds >= 0) & (dt >= 0) & np.isfinite(ds) & np.isfinite(dt)
        if not ok.any():
            return None, k
        best = float((ds[ok] + dt[ok]).min())
        return (int(best) if integral else best), k

    return estimate


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
class ConnStats:
    """Per-connection counters, folded into :class:`NetStats` on close."""

    __slots__ = (
        "id", "peer", "transport", "opened", "requests", "responses",
        "pairs", "errors", "overloads", "degraded", "bytes_in", "bytes_out",
    )

    def __init__(self, conn_id: int, peer: str, transport: str, opened: float):
        self.id = conn_id
        self.peer = peer
        self.transport = transport
        self.opened = opened
        self.requests = 0
        self.responses = 0
        self.pairs = 0
        self.errors = 0
        self.overloads = 0
        self.degraded = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def snapshot(self, now: float) -> dict:
        """JSON-serialisable view of one live connection."""
        return {
            "id": self.id,
            "peer": self.peer,
            "transport": self.transport,
            "age_s": now - self.opened,
            "requests": self.requests,
            "responses": self.responses,
            "pairs": self.pairs,
            "errors": self.errors,
            "overloads": self.overloads,
            "degraded": self.degraded,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }


#: ConnStats counter names folded into the closed-connection aggregate.
_FOLDED = (
    "requests", "responses", "pairs", "errors",
    "overloads", "degraded", "bytes_in", "bytes_out",
)


class NetStats:
    """Front-end observability: queue shape, flush mix, per-client counters.

    Everything here is mutated on the event loop thread only (the
    dispatch thread runs the executor, not the accounting), so no lock
    is needed.  The queue-wait histogram measures enqueue-to-dispatch
    time, the service-time histogram the per-request share of each
    batch's execution — together they split observed latency into
    "waiting to coalesce" vs "being answered", the knob-tuning signal
    for ``coalesce_us`` and ``max_batch``.
    """

    def __init__(self, reservoir: int = 8192, clock=time.monotonic) -> None:
        self.clock = clock
        self._next_id = 0
        self._active: dict[int, ConnStats] = {}
        self._closed = dict.fromkeys(_FOLDED, 0)
        self.connections_total = 0
        self.accepted = 0
        self.overloaded = 0
        self.degraded = 0
        self.errors = 0
        self.idle_closed = 0
        self.flushes = 0
        self.flushed_pairs = 0
        self.cross_client_flushes = 0
        self.max_flush = 0
        self.peak_depth = 0
        self.reloads = 0
        self.queue_wait = LatencyHistogram(reservoir)
        self.service_time = LatencyHistogram(reservoir)

    # -- connections ---------------------------------------------------
    def connect(self, peer: str, transport: str) -> ConnStats:
        """Register a new connection; returns its counter record."""
        self._next_id += 1
        conn = ConnStats(self._next_id, peer, transport, self.clock())
        self._active[conn.id] = conn
        self.connections_total += 1
        return conn

    def disconnect(self, conn: ConnStats) -> None:
        """Fold a closing connection's counters into the closed aggregate."""
        self._active.pop(conn.id, None)
        for name in _FOLDED:
            self._closed[name] += getattr(conn, name)

    # -- queue / flush accounting ---------------------------------------
    def observe_depth(self, depth: int) -> None:
        """Track the high-water mark of the pending queue."""
        if depth > self.peak_depth:
            self.peak_depth = depth

    def observe_flush(self, waits, elapsed: float, size: int, conns: int) -> None:
        """Record one dispatched batch: waits, service share, client mix."""
        self.flushes += 1
        self.flushed_pairs += size
        if size > self.max_flush:
            self.max_flush = size
        if conns > 1:
            self.cross_client_flushes += 1
        for wait in waits:
            self.queue_wait.observe(wait)
        share = elapsed / size if size else 0.0
        for _ in range(size):
            self.service_time.observe(share)

    # -- reporting -------------------------------------------------------
    def snapshot(self, *, queue: Optional[dict] = None, top: int = 8) -> dict:
        """The ``"net"`` block embedded in service snapshots."""
        now = self.clock()
        clients = sorted(
            self._active.values(), key=lambda c: c.requests, reverse=True
        )
        return {
            "queue": dict(queue or {}, peak_depth=self.peak_depth),
            "requests": {
                "accepted": self.accepted,
                "overloaded": self.overloaded,
                "degraded": self.degraded,
                "errors": self.errors,
            },
            "flushes": {
                "count": self.flushes,
                "pairs": self.flushed_pairs,
                "mean_batch": self.flushed_pairs / self.flushes if self.flushes else 0.0,
                "max_batch": self.max_flush,
                "cross_client": self.cross_client_flushes,
            },
            "queue_wait": self.queue_wait.snapshot(),
            "service_time": self.service_time.snapshot(),
            "connections": {
                "active": len(self._active),
                "total": self.connections_total,
                "idle_closed": self.idle_closed,
                "closed_totals": dict(self._closed),
                "clients": [conn.snapshot(now) for conn in clients[:top]],
            },
            "reloads": self.reloads,
        }

    def reset(self) -> None:
        """Zero the aggregates; live connections keep their identities."""
        reservoir = self.queue_wait._samples.maxlen or 8192
        self._closed = dict.fromkeys(_FOLDED, 0)
        self.accepted = self.overloaded = self.degraded = self.errors = 0
        self.idle_closed = 0
        self.flushes = self.flushed_pairs = 0
        self.cross_client_flushes = self.max_flush = 0
        self.peak_depth = 0
        self.reloads = 0
        self.queue_wait = LatencyHistogram(reservoir)
        self.service_time = LatencyHistogram(reservoir)


# ----------------------------------------------------------------------
# the coalescing queue
# ----------------------------------------------------------------------
class Coalescer:
    """Fold requests from many connections into single executor calls.

    Args:
        runner: ``runner(pairs, with_path) -> list[QueryResult]`` — in
            production a closure over the server's *current* app, so a
            hot reload redirects every flush after the swap.
        window_us: coalescing window in microseconds, measured from the
            first request entering an empty queue; ``0`` flushes on the
            next event-loop turn, ``None`` disables automatic flushing
            entirely (manual mode — tests drive :meth:`flush` to get
            deterministic windows).
        max_batch: requests per executor call; a full window dispatches
            immediately, and larger drains are chunked to this size.
        soft_limit: pending + in-flight requests beyond which
            :meth:`offer` rejects (the caller answers "overloaded").
        hard_limit: depth beyond which :meth:`wait_admittable` blocks —
            connection readers await it before every read, so sockets
            stop being drained and TCP pushes back.  Defaults to
            ``4 * soft_limit``.
        stats: optional :class:`NetStats` receiving queue/flush metrics.
        slo: optional :class:`SloController`.  When present, deadlined
            requests are tracked (the window flushes *early* when the
            tightest pending deadline could not survive a full window
            plus the predicted execute tail), per-stage timings feed
            its predictor, expired requests are peeled off before
            dispatch, and — when its adaptive limiter is enabled — the
            soft admission limit follows the AIMD limit instead of the
            static ``soft_limit``.
        clock: monotonic time source (injectable for tests).

    Dispatch runs on a single worker thread (``run_in_executor``), so
    the event loop keeps accepting and coalescing *while* a batch
    executes — under sustained load the next batch is whatever arrived
    during the previous one, which is exactly the adaptive batching
    the fused kernels want.  The dispatch lock serialises batches and
    is the reload synchronisation point.
    """

    def __init__(
        self,
        runner: Callable,
        *,
        window_us: Optional[float] = DEFAULT_WINDOW_US,
        max_batch: int = DEFAULT_MAX_BATCH,
        soft_limit: int = DEFAULT_MAX_PENDING,
        hard_limit: int = 0,
        stats: Optional[NetStats] = None,
        slo: Optional[SloController] = None,
        clock=time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise QueryError("max_batch must be at least 1")
        if soft_limit < 1:
            raise QueryError("soft_limit must be at least 1")
        if hard_limit and hard_limit < soft_limit:
            raise QueryError("hard_limit must be >= soft_limit")
        self.runner = runner
        self.window_us = window_us
        self.max_batch = max_batch
        self.soft_limit = soft_limit
        self.hard_limit = hard_limit or 4 * soft_limit
        self.stats = stats
        self.slo = slo
        self.clock = clock
        self._runner_takes_budget = _accepts_budget(runner)
        self._tightest: Optional[float] = None
        self._pending: list[_Request] = []
        self._in_flight = 0
        self._lock = asyncio.Lock()
        self._gate = asyncio.Event()
        self._gate.set()
        self._burst = asyncio.Event()
        self._flusher: Optional[asyncio.Task] = None
        self._ewma_item_s = 0.0
        self._pool = None  # created lazily on the serving loop
        self._closed = False

    # -- admission -------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests admitted but not yet answered (queued + in flight)."""
        return len(self._pending) + self._in_flight

    def offer(
        self, s: int, t: int, *, with_path: bool = False, conn=None, deadline=None
    ):
        """Admit one pair; returns its future, or ``None`` when overloaded."""
        admitted = self.offer_many(
            [(s, t)], with_path=with_path, conn=conn, deadline=deadline
        )
        return admitted[0] if admitted is not None else None

    def offer_many(
        self, pairs, *, with_path: bool = False, conn=None, deadline=None
    ):
        """Admit a client batch atomically; ``None`` when it would overflow.

        The whole batch is admitted or rejected as one unit — partial
        admission would hand the client an unordered mix of answers and
        overload errors for a single request object.  ``deadline`` (a
        :class:`~repro.service.slo.Deadline`) rides with every request
        of the batch into dispatch.
        """
        if self._closed or self.depth + len(pairs) > self.soft_limit_now():
            return None
        loop = asyncio.get_running_loop()
        now = self.clock()
        futures = []
        for s, t in pairs:
            future = loop.create_future()
            self._pending.append(
                _Request(s, t, with_path, future, now, conn, deadline)
            )
            futures.append(future)
        if deadline is not None and (
            self._tightest is None or deadline.expires_at < self._tightest
        ):
            self._tightest = deadline.expires_at
        if self.stats is not None:
            self.stats.observe_depth(self.depth)
        self._update_gate()
        self._schedule_flush()
        return futures

    def soft_limit_now(self) -> int:
        """The live admission limit: the AIMD limit when adaptive, else static.

        The adaptive limit is clamped into ``[1, hard_limit]`` — the
        limiter may probe upward past the static soft limit, but never
        past the point where socket backpressure takes over.
        """
        if self.slo is not None:
            adaptive = self.slo.effective_soft_limit()
            if adaptive is not None:
                return min(self.hard_limit, max(1, adaptive))
        return self.soft_limit

    def retry_after_ms(self) -> int:
        """Suggested client backoff, from the recent per-item service time.

        Clamped to ``[RETRY_AFTER_FLOOR_MS, 5000]``: the estimate tracks
        how long the current queue takes to drain, but never tells
        clients to hammer a rejecting server at millisecond cadence.
        """
        per_item = self._ewma_item_s
        if per_item <= 0:
            window_ms = (self.window_us or DEFAULT_WINDOW_US) / 1e3
            return max(RETRY_AFTER_FLOOR_MS, int(2 * window_ms))
        return min(
            5000, max(RETRY_AFTER_FLOOR_MS, int(self.depth * per_item * 1e3))
        )

    async def wait_admittable(self) -> None:
        """Block while the queue is past the hard limit (socket backpressure)."""
        while self.depth >= self.hard_limit:
            self._gate.clear()
            await self._gate.wait()

    def _update_gate(self) -> None:
        if self.depth >= self.hard_limit:
            self._gate.clear()
        else:
            self._gate.set()

    # -- flushing ----------------------------------------------------------
    def _schedule_flush(self) -> None:
        if self.window_us is None:
            return  # manual mode: tests call flush() themselves
        if self._flusher is None or self._flusher.done():
            self._burst = asyncio.Event()
            self._flusher = asyncio.create_task(self._window_flush())
        self._maybe_burst()

    def _maybe_burst(self) -> None:
        """Fire the burst event when the queue cannot wait out the window."""
        if self._burst.is_set():
            return
        if len(self._pending) >= self.max_batch:
            self._burst.set()
        elif self._deadline_burst():
            self._burst.set()
            if self.slo is not None:
                self.slo.note_early_flush()

    def _deadline_burst(self) -> bool:
        """Would a full coalescing window blow the tightest pending deadline?

        The spare time of the tightest deadline is its remaining budget
        minus the predicted execute tail; when that spare no longer
        covers the window, waiting is guaranteed lateness and the batch
        dispatches with whatever has coalesced so far.
        """
        if self._tightest is None:
            return False
        window_s = (self.window_us or 0.0) / 1e6
        tail = self.slo.predictor.execute_tail_s() if self.slo is not None else 0.0
        return (self._tightest - self.clock()) - tail < window_s

    async def _window_flush(self) -> None:
        window_s = (self.window_us or 0.0) / 1e6
        if window_s > 0 and not self._burst.is_set():
            try:
                await asyncio.wait_for(self._burst.wait(), window_s)
            except (asyncio.TimeoutError, TimeoutError):
                pass  # window elapsed with no burst: flush what arrived
        await self.flush()

    async def flush(self) -> int:
        """Dispatch everything pending (chunked); returns requests answered.

        Requests arriving *while* a chunk executes are drained by the
        same call, so under load the loop degenerates into back-to-back
        maximal batches with no window delay at all.
        """
        answered = 0
        while self._pending:
            async with self._lock:
                batch = self._pending[: self.max_batch]
                if not batch:  # lost the race to a concurrent flush
                    break
                del self._pending[: len(batch)]
                self._tightest = min(
                    (
                        r.deadline.expires_at
                        for r in self._pending
                        if r.deadline is not None
                    ),
                    default=None,
                )
                self._in_flight += len(batch)
                try:
                    await self._dispatch(batch)
                finally:
                    self._in_flight -= len(batch)
                    self._update_gate()
                answered += len(batch)
        return answered

    async def _dispatch(self, batch: list[_Request]) -> None:
        loop = asyncio.get_running_loop()
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(1, thread_name_prefix="repro-dispatch")
        started = self.clock()
        waits = [started - request.enqueued for request in batch]
        slo = self.slo
        if slo is not None:
            for wait in waits:
                slo.observe_stage("queue", wait)
            if waits:
                slo.observe_stage("coalesce", max(waits))
        # A request whose deadline already expired never reaches the
        # backend: its future resolves to a _DeadlineMiss and the server
        # walks the degrade ladder instead of computing a late answer.
        live: list[_Request] = []
        for request in batch:
            if request.deadline is not None and request.deadline.remaining() <= 0:
                if slo is not None:
                    slo.note_stage_miss("dispatch")
                if not request.future.done():
                    request.future.set_result(_DeadlineMiss("dispatch"))
                continue
            live.append(request)
        # One executor call per (path, deadlined) flavour: BatchExecutor
        # takes a batch-wide with_path, and a deadline budget must not
        # make co-batched unbounded requests degradable.
        lanes: dict[tuple[bool, bool], list[_Request]] = {}
        for request in live:
            key = (request.with_path, request.deadline is not None)
            lanes.setdefault(key, []).append(request)
        for (with_path, bounded), lane in lanes.items():
            pairs = [(r.s, r.t) for r in lane]
            call = partial(self.runner, pairs, with_path)
            if bounded and self._runner_takes_budget:
                # The lane runs under its tightest member's residual
                # budget — looser members only ever get *more* time.
                tightest = min(r.deadline.remaining() for r in lane)
                call = partial(
                    self.runner, pairs, with_path, budget_s=max(1e-3, tightest)
                )
            t0 = self.clock()
            if slo is not None:
                slo.observe_stage("dispatch", t0 - started)
            try:
                results = await loop.run_in_executor(self._pool, call)
            except Exception as exc:  # answer with errors, never drop
                results = [_BatchError(exc)] * len(lane)
            t1 = self.clock()
            if slo is not None:
                slo.observe_execute(t1 - t0, len(lane))
            for request, result in zip(lane, results):
                if not request.future.done():
                    request.future.set_result(result)
            if slo is not None:
                slo.observe_stage("collect", self.clock() - t1)
        elapsed = self.clock() - started
        share = elapsed / len(batch)
        self._ewma_item_s = (
            share if self._ewma_item_s == 0.0
            else 0.8 * self._ewma_item_s + 0.2 * share
        )
        if self.stats is not None:
            conns = len({id(r.conn) for r in batch if r.conn is not None})
            self.stats.observe_flush(waits, elapsed, len(batch), conns)

    @property
    def dispatch_lock(self) -> asyncio.Lock:
        """The batch-serialising lock; hold it to swap the app safely."""
        return self._lock

    async def close(self) -> None:
        """Flush what remains, stop the window task, release the thread."""
        self._closed = True
        await self.flush()
        if self._flusher is not None and not self._flusher.done():
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: What a routed request yields: a ready response, a lazily-computed
#: one (commands whose effects must order after earlier responses), or
#: a coroutine awaiting coalesced futures.
_Payload = Union[dict, Callable[[], dict], Awaitable[dict]]


# ----------------------------------------------------------------------
# the server
# ----------------------------------------------------------------------
class NetServer:
    """The asyncio front end serving one :class:`ServiceApp` to many clients.

    Args:
        app: the serving stack (any backend — single, threads,
            procpool, mmap).
        host / port: bind address; port ``0`` picks a free port
            (read the chosen one from :attr:`port` after
            :meth:`start`).
        transport: ``"tcp"`` (newline-delimited JSON) or ``"http"``
            (``POST /query`` / ``GET /stats`` framing on the same core).
        coalesce_us / max_batch / max_pending / hard_pending: the
            :class:`Coalescer` knobs (``hard_pending`` 0 defaults to
            ``4 * max_pending``).
        degrade: past the soft limit, answer distance-only queries from
            the landmark triangulation estimate (method ``"estimate"``,
            ``"degraded": true``) instead of an overload error; falls
            back to overload errors when the index has no tables.
        slo: a :class:`~repro.service.slo.SloConfig` — the default
            request deadline, the degrade ladder walked when a deadline
            cannot be met (``exact`` → ``estimate`` → shed with
            ``retry_after_ms``), the p99 target, and the adaptive
            (AIMD) concurrency limiter.  ``None`` builds a passive
            controller: per-request ``deadline_ms`` still works, but
            requests without one take exactly the pre-SLO paths.
        retry_jitter: fractional jitter (default ±25%) applied to every
            ``retry_after_ms`` the server suggests, so rejected clients
            do not re-arrive in lockstep.
        idle_timeout_s: close connections that send nothing for this
            long (a clean error frame first on the JSONL transport, a
            408 on HTTP); ``None`` disables the timeout.
        app_factory: ``factory(path, **overrides) -> ServiceApp`` used
            by ``{"cmd": "reload"}``; defaults to
            ``ServiceApp.from_saved(path, mmap=True)``.
    """

    def __init__(
        self,
        app: ServiceApp,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        transport: str = "tcp",
        coalesce_us: Optional[float] = DEFAULT_WINDOW_US,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_pending: int = DEFAULT_MAX_PENDING,
        hard_pending: int = 0,
        degrade: bool = False,
        slo: Optional[SloConfig] = None,
        retry_jitter: float = 0.25,
        idle_timeout_s: Optional[float] = None,
        app_factory: Optional[Callable] = None,
    ) -> None:
        if transport not in ("tcp", "http"):
            raise QueryError(f"unknown transport {transport!r}; use 'tcp' or 'http'")
        if not 0 <= retry_jitter < 1:
            raise QueryError("retry_jitter must be in [0, 1)")
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise QueryError("idle_timeout_s must be positive")
        self.app = app
        self.host = host
        self.port = port
        self.transport = transport
        self.degrade = degrade
        self.retry_jitter = float(retry_jitter)
        self.idle_timeout_s = idle_timeout_s
        self.app_factory = app_factory
        self.stats = NetStats()
        self.slo = SloController(
            slo or SloConfig(),
            soft_limit=max_pending,
            hard_limit=hard_pending or 4 * max_pending,
        )
        self.coalescer = Coalescer(
            self._run_batch,
            window_us=coalesce_us,
            max_batch=max_batch,
            soft_limit=max_pending,
            hard_limit=hard_pending,
            stats=self.stats,
            slo=self.slo,
        )
        self._estimator = landmark_estimator(app) if degrade else None
        self._ladder_estimator = (
            landmark_estimator(app) if "estimate" in self.slo.config.ladder else None
        )
        self._rng = random.Random()
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._drained = asyncio.Event()
        self._stop = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------
    def _run_batch(self, pairs, with_path, *, budget_s=None):
        # Reads self.app at call time: after a reload swap, queued
        # requests are answered by the new app.
        return self.app.executor.run(pairs, with_path=with_path, budget_s=budget_s)

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the actual ``(host, port)``."""
        handler = self._serve_jsonl if self.transport == "tcp" else self._serve_http
        self._server = await asyncio.start_server(
            handler, self.host, self.port, limit=MAX_BODY_BYTES
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    def request_shutdown(self) -> None:
        """Ask the serving loop to drain and stop (signal-handler safe)."""
        self._stop.set()

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_shutdown`, then drain cleanly."""
        await self._stop.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, answer everything admitted, close every socket."""
        if self._drained.is_set():
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()  # stop *reading*; queued responses still flush
        await self.coalescer.flush()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self.coalescer.close()
        self._drained.set()

    def snapshot(self) -> dict:
        """The full service snapshot with the front end's ``net`` block."""
        queue = {
            "depth": self.coalescer.depth,
            "in_flight": self.coalescer._in_flight,
            "soft_limit": self.coalescer.soft_limit,
            "soft_limit_now": self.coalescer.soft_limit_now(),
            "hard_limit": self.coalescer.hard_limit,
            "coalesce_us": self.coalescer.window_us,
            "max_batch": self.coalescer.max_batch,
        }
        net = self.stats.snapshot(queue=queue)
        net["slo"] = self.slo.snapshot()
        return self.app.snapshot(net=net)

    async def reload(self, path, *, mmap: Optional[bool] = None) -> dict:
        """Swap in a freshly loaded store without dropping a request.

        The new app is built off the event loop; the swap itself holds
        the dispatch lock, so it happens strictly *between* batches —
        every queued request is answered (by whichever app owns the
        lock when its batch dispatches) and the old backend is closed
        only after its last batch completed.
        """
        loop = asyncio.get_running_loop()
        factory = self.app_factory or partial(ServiceApp.from_saved, mmap=True)
        overrides = {} if mmap is None else {"mmap": mmap}
        try:
            new_app = await loop.run_in_executor(
                None, partial(factory, path, **overrides)
            )
        except Exception as exc:
            self.stats.errors += 1
            return {"error": f"reload failed: {exc}"}
        async with self.coalescer.dispatch_lock:
            old, self.app = self.app, new_app
        if self.degrade:
            self._estimator = landmark_estimator(new_app)
        if "estimate" in self.slo.config.ladder:
            self._ladder_estimator = landmark_estimator(new_app)
        self.stats.reloads += 1
        if old is not None:
            await loop.run_in_executor(None, old.close)
        return {"ok": True, "reloaded": str(path), "n": new_app.n}

    # -- request routing (shared by both framings) ---------------------------
    def _route_request(self, conn: ConnStats, request) -> tuple[_Payload, bool]:
        """Route one decoded request object; returns ``(payload, keep)``.

        Admission (and therefore the coalescing clock) happens *here*,
        at read time; only the response wait is deferred.  Commands
        return callables/coroutines evaluated at write time, so their
        effects and views order after the connection's earlier
        responses.
        """
        if not isinstance(request, dict):
            conn.errors += 1
            self.stats.errors += 1
            return {"error": "request must be a JSON object"}, True
        command = request.get("cmd")
        if command is not None:
            if command == "stats":
                return (lambda: self.snapshot()), True
            if command == "reset":
                return self._do_reset, True
            if command == "quit":
                return {"ok": True}, False
            if command == "reload":
                return self._route_reload(conn, request)
            conn.errors += 1
            self.stats.errors += 1
            return {"error": f"unknown command {command!r}"}, True
        if "pairs" in request:
            return self._admit_pairs(conn, request), True
        if "s" in request and "t" in request:
            return self._admit_single(conn, request), True
        conn.errors += 1
        self.stats.errors += 1
        return {"error": "expected {'s','t'}, {'pairs'} or {'cmd'}"}, True

    def _do_reset(self) -> dict:
        self.app.reset()
        self.stats.reset()
        return {"ok": True}

    def _route_reload(self, conn: ConnStats, request) -> tuple[_Payload, bool]:
        path = request.get("path")
        if not isinstance(path, str) or not path:
            conn.errors += 1
            self.stats.errors += 1
            return {"error": "reload requires a 'path' string"}, True
        mmap = request.get("mmap")
        return self.reload(path, mmap=None if mmap is None else bool(mmap)), True

    def _validate(self, s: int, t: int) -> None:
        # Validation must happen before admission: a bad pair inside a
        # coalesced batch would fail the whole executor call and take
        # innocent co-batched requests down with it.
        n = self.app.n
        for u in (s, t):
            if not 0 <= u < n:
                raise QueryError(f"node {u} is not in the graph (valid range: 0..{n - 1})")

    def _admit_single(self, conn: ConnStats, request) -> _Payload:
        try:
            s, t = int(request["s"]), int(request["t"])
            with_path = bool(request.get("path", False))
            deadline_ms = validate_deadline_ms(request.get("deadline_ms"))
            self._validate(s, t)
        except (ReproError, ValueError, TypeError, OverflowError) as exc:
            conn.errors += 1
            self.stats.errors += 1
            return {"error": str(exc)}
        deadline = self.slo.deadline_for(deadline_ms)
        if deadline is not None:
            rung = self.slo.admit(deadline, self.coalescer.depth)
            if rung != "exact":
                return self._degrade_or_shed(conn, rung, [(s, t)], with_path)
        future = self.coalescer.offer(
            s, t, with_path=with_path, conn=conn, deadline=deadline
        )
        if future is None:
            if deadline is not None:
                # A full queue means the deadline cannot be met: walk
                # the ladder instead of the legacy overload rejection.
                self.slo.note_stage_miss("queue")
                return self._degrade_or_shed(
                    conn, self.slo.rung_after("exact"), [(s, t)], with_path
                )
            return self._overloaded(conn, [(s, t)], with_path)
        conn.pairs += 1
        self.stats.accepted += 1
        return self._await_single(
            future, with_path, conn=conn, pair=(s, t), deadline=deadline
        )

    def _admit_pairs(self, conn: ConnStats, request) -> _Payload:
        try:
            pairs = [(int(s), int(t)) for s, t in request["pairs"]]
            with_path = bool(request.get("path", False))
            deadline_ms = validate_deadline_ms(request.get("deadline_ms"))
            for s, t in pairs:
                self._validate(s, t)
        except (ReproError, ValueError, TypeError, OverflowError) as exc:
            conn.errors += 1
            self.stats.errors += 1
            return {"error": str(exc)}
        deadline = self.slo.deadline_for(deadline_ms)
        if deadline is not None:
            rung = self.slo.admit(deadline, self.coalescer.depth)
            if rung != "exact":
                return self._degrade_or_shed(
                    conn, rung, pairs, with_path, batch=True
                )
        futures = self.coalescer.offer_many(
            pairs, with_path=with_path, conn=conn, deadline=deadline
        )
        if futures is None:
            if deadline is not None:
                self.slo.note_stage_miss("queue")
                return self._degrade_or_shed(
                    conn, self.slo.rung_after("exact"), pairs, with_path,
                    batch=True,
                )
            return self._overloaded(conn, pairs, with_path)
        conn.pairs += len(pairs)
        self.stats.accepted += len(pairs)
        return self._await_pairs(
            futures, with_path, conn=conn, pairs=pairs, deadline=deadline
        )

    def _retry_after_ms(self) -> int:
        """The coalescer's backoff suggestion, jittered ±``retry_jitter``.

        Un-jittered backoff is a metronome: every client rejected in the
        same congestion window returns in the same later window and the
        stampede repeats.  The multiplicative spread decorrelates them.
        """
        base = self.coalescer.retry_after_ms()
        if self.retry_jitter <= 0:
            return base
        spread = 1.0 + self.retry_jitter * (2.0 * self._rng.random() - 1.0)
        return max(1, int(base * spread))

    def _overloaded(self, conn: ConnStats, pairs, with_path: bool) -> dict:
        conn.overloads += 1
        self.stats.overloaded += 1
        # Degrade mode answers single distance-only queries: estimates
        # carry no path, and a batch mixing exact and estimated answers
        # would be indistinguishable from a correct response.
        if self._estimator is not None and not with_path and len(pairs) == 1:
            (s, t), = pairs
            distance, probes = self._estimator(s, t)
            conn.degraded += 1
            self.stats.degraded += 1
            return {
                "s": s, "t": t, "distance": distance,
                "method": "estimate", "probes": probes, "degraded": True,
            }
        return {
            "error": "overloaded",
            "retry_after_ms": self._retry_after_ms(),
        }

    def _degrade_or_shed(
        self, conn: ConnStats, rung: str, pairs, with_path: bool, *, batch=False
    ) -> dict:
        """Answer a deadline-missing request from the degrade ladder.

        ``estimate`` answers from the landmark triangulation tables
        (every pair of the request degrades — a mix of exact and
        estimated answers would be indistinguishable from a correct
        response); path queries and table-less indexes fall through to
        the next rung.  ``shed`` (the terminal rung) answers a typed
        error with a jittered ``retry_after_ms``.
        """
        if rung == "estimate" and (self._ladder_estimator is None or with_path):
            rung = self.slo.rung_after("estimate")
        if rung == "estimate":
            estimates = []
            for s, t in pairs:
                distance, probes = self._ladder_estimator(s, t)
                estimates.append({
                    "s": s, "t": t, "distance": distance,
                    "method": "estimate", "probes": probes, "degraded": True,
                })
                self.slo.note_rung("estimate")
            conn.degraded += len(pairs)
            self.stats.degraded += len(pairs)
            return {"results": estimates} if batch else estimates[0]
        for _ in pairs:
            self.slo.note_rung("shed")
        conn.overloads += 1
        self.stats.overloaded += 1
        return {
            "error": "deadline",
            "retry_after_ms": self._retry_after_ms(),
        }

    async def _await_single(
        self, future, with_path: bool, *, conn=None, pair=None, deadline=None
    ) -> dict:
        result = await future
        if isinstance(result, _BatchError):
            self.stats.errors += 1
            return {"error": str(result.exc)}
        if deadline is None:
            return encode_result(result, with_path)
        if isinstance(result, _DeadlineMiss):
            self.slo.note_completion(deadline)
            return self._degrade_or_shed(
                conn, self.slo.rung_after("exact"), [pair], with_path
            )
        met = self.slo.note_completion(deadline)
        if not met:
            # The exact answer exists but arrived late: a late answer
            # is a wrong answer under an SLO, so the ladder still runs.
            self.slo.note_stage_miss("execute")
            return self._degrade_or_shed(
                conn, self.slo.rung_after("exact"), [pair], with_path
            )
        self.slo.note_rung(
            "estimate" if result.method == "estimate" else "exact"
        )
        return encode_result(result, with_path)

    async def _await_pairs(
        self, futures, with_path: bool, *, conn=None, pairs=None, deadline=None
    ) -> dict:
        results = await asyncio.gather(*futures)
        bad = next((r for r in results if isinstance(r, _BatchError)), None)
        if bad is not None:
            self.stats.errors += 1
            return {"error": str(bad.exc)}
        if deadline is None:
            return {"results": [encode_result(r, with_path) for r in results]}
        met = self.slo.note_completion(deadline)
        missed = any(isinstance(r, _DeadlineMiss) for r in results)
        if missed or not met:
            if not missed:
                self.slo.note_stage_miss("execute")
            return self._degrade_or_shed(
                conn, self.slo.rung_after("exact"), pairs, with_path, batch=True
            )
        for result in results:
            self.slo.note_rung(
                "estimate" if result.method == "estimate" else "exact"
            )
        return {"results": [encode_result(r, with_path) for r in results]}

    async def _read_with_idle(self, read_coro):
        """Await a transport read, bounded by the idle timeout (if any)."""
        if self.idle_timeout_s is None:
            return await read_coro
        return await asyncio.wait_for(read_coro, self.idle_timeout_s)

    @staticmethod
    async def _resolve(payload: _Payload) -> dict:
        if asyncio.iscoroutine(payload):
            return await payload
        if callable(payload):
            return payload()
        return payload

    # -- JSON-lines transport ---------------------------------------------
    async def _serve_jsonl(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        conn = self.stats.connect(_peer_name(writer), "jsonl")
        out_q: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_jsonl(conn, writer, out_q))
        try:
            while not self._draining:
                await self.coalescer.wait_admittable()
                try:
                    line = await self._read_with_idle(reader.readline())
                except (asyncio.TimeoutError, TimeoutError):
                    # A slow or silent client is holding a socket (and,
                    # under the hard limit, a reader slot): say why,
                    # then hang up cleanly.
                    self.stats.idle_closed += 1
                    out_q.put_nowait((
                        {
                            "error": "idle timeout",
                            "idle_timeout_s": self.idle_timeout_s,
                        },
                        True,
                    ))
                    break
                except ValueError:  # line beyond the stream limit
                    out_q.put_nowait(({"error": "request line too long"}, True))
                    break
                except (ConnectionResetError, OSError):
                    break
                if not line:
                    break  # EOF
                conn.bytes_in += len(line)
                if not line.strip():
                    continue
                conn.requests += 1
                payload, keep = self._route_line(conn, line)
                out_q.put_nowait((payload, False))
                if not keep:
                    break
        except asyncio.CancelledError:
            pass  # drain(): stop reading; queued responses still go out
        finally:
            out_q.put_nowait(_CONN_DONE)
            await _settle(writer_task)
            self.stats.disconnect(conn)
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, OSError):
                pass

    def _route_line(self, conn: ConnStats, line: bytes) -> tuple[_Payload, bool]:
        try:
            request = decode_json_line(line)
        except ProtocolError as exc:
            conn.errors += 1
            self.stats.errors += 1
            return {"error": str(exc)}, True
        return self._route_request(conn, request)

    async def _write_jsonl(self, conn: ConnStats, writer, out_q) -> None:
        """Deliver responses in this connection's request order."""
        while True:
            item = await out_q.get()
            if item is _CONN_DONE:
                break
            payload, _ = item
            try:
                response = await self._resolve(payload)
            except Exception as exc:  # belt and braces: never kill the writer
                response = {"error": f"{type(exc).__name__}: {exc}"}
            data = json_line(response)
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionResetError, OSError):
                # Client went away: keep consuming the queue so every
                # admitted future still gets awaited (and resolved).
                continue
            conn.responses += 1
            conn.bytes_out += len(data)

    # -- HTTP transport -----------------------------------------------------
    async def _serve_http(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        conn = self.stats.connect(_peer_name(writer), "http")
        try:
            while not self._draining:
                await self.coalescer.wait_admittable()
                try:
                    head = await self._read_with_idle(reader.readuntil(b"\r\n\r\n"))
                except (asyncio.TimeoutError, TimeoutError):
                    self.stats.idle_closed += 1
                    frame = http_response(
                        {
                            "error": "idle timeout",
                            "idle_timeout_s": self.idle_timeout_s,
                        },
                        status=408, keep_alive=False,
                    )
                    try:
                        writer.write(frame)
                        await writer.drain()
                    except (ConnectionResetError, OSError):
                        pass
                    break
                except asyncio.IncompleteReadError:
                    break  # EOF between requests
                except asyncio.LimitOverrunError:
                    frame = http_response(
                        {"error": "request head too large"},
                        status=413, keep_alive=False,
                    )
                    writer.write(frame)
                    await writer.drain()
                    break
                except (ConnectionResetError, OSError):
                    break
                conn.bytes_in += len(head)
                keep = False
                try:
                    request = parse_http_head(head)
                    keep = request.keep_alive
                    length = request.content_length
                    body = await reader.readexactly(length) if length else b""
                    conn.bytes_in += len(body)
                    status, response = await self._route_http(conn, request, body)
                except ProtocolError as exc:
                    conn.errors += 1
                    self.stats.errors += 1
                    status, response, keep = exc.status, {"error": str(exc)}, False
                except asyncio.IncompleteReadError:
                    break  # truncated body: nothing sane to answer
                extra = ()
                if status == 503 and "retry_after_ms" in response:
                    retry_s = max(1, -(-response["retry_after_ms"] // 1000))
                    extra = (("Retry-After", str(retry_s)),)
                frame = http_response(
                    response, status=status, keep_alive=keep, extra_headers=extra
                )
                try:
                    writer.write(frame)
                    await writer.drain()
                except (ConnectionResetError, OSError):
                    break
                conn.responses += 1
                conn.bytes_out += len(frame)
                if not keep:
                    break
        except asyncio.CancelledError:
            pass
        finally:
            self.stats.disconnect(conn)
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, OSError):
                pass

    async def _route_http(self, conn: ConnStats, request, body: bytes):
        """Map an HTTP exchange onto the shared request router."""
        if request.method == "GET" and request.target == "/stats":
            conn.requests += 1
            return 200, self.snapshot()
        if request.method == "POST" and request.target == "/query":
            conn.requests += 1
            decoded = decode_json_line(body) if body else None
            header_deadline = request.deadline_ms
            if header_deadline is not None and isinstance(decoded, dict):
                # X-Deadline-Ms applies unless the body already set one.
                decoded.setdefault("deadline_ms", header_deadline)
            payload, _keep = self._route_request(conn, decoded)
            response = await self._resolve(payload)
            if "error" in response and "retry_after_ms" in response:
                return 503, response  # overloaded / deadline shed
            if "error" in response:
                return 400, response
            return 200, response
        if request.target in ("/query", "/stats"):
            return 405, {"error": f"{request.method} not allowed on {request.target}"}
        return 404, {"error": f"no route for {request.method} {request.target}"}


async def _settle(writer_task: asyncio.Task) -> None:
    """Await a connection's writer from inside a possibly-cancelled task.

    ``drain()`` cancels connection tasks to stop their *reads*; a cancel
    landing while the task is already here (in its ``finally``) must not
    abandon the responses still queued — so late cancels are absorbed
    and the writer is awaited to completion.  The ``_CONN_DONE``
    sentinel is already queued, so completion is guaranteed.
    """
    while not writer_task.done():
        try:
            await asyncio.shield(writer_task)
        except asyncio.CancelledError:
            continue  # drain() fired mid-settle: keep delivering
        except Exception:
            break
    if writer_task.done() and not writer_task.cancelled():
        writer_task.exception()  # mark retrieved; _write_jsonl never raises


def _peer_name(writer) -> str:
    peer = writer.get_extra_info("peername")
    if isinstance(peer, tuple) and len(peer) >= 2:
        return f"{peer[0]}:{peer[1]}"
    return str(peer)


def _accepts_budget(func) -> bool:
    """Does a runner callable take the ``budget_s`` keyword?"""
    try:
        parameters = inspect.signature(func).parameters
    except (TypeError, ValueError):
        return False
    if "budget_s" in parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


async def serve_app(
    app: ServiceApp,
    *,
    stop: Optional[asyncio.Event] = None,
    ready: Optional[Callable[["NetServer"], None]] = None,
    **server_kwargs,
) -> NetServer:
    """Start a :class:`NetServer`, run until ``stop``, drain, return it.

    The CLI's network serving loop: ``ready`` (if given) is called with
    the started server — it reports the bound address; ``stop``
    defaults to the server's own shutdown event, which SIGTERM/SIGINT
    handlers or ``request_shutdown`` set.
    """
    server = NetServer(app, **server_kwargs)
    await server.start()
    if ready is not None:
        ready(server)
    if stop is not None:
        await stop.wait()
        await server.drain()
    else:
        await server.serve_forever()
    return server
