"""Figure 2: the three vicinity-property curves.

* **(left)** fraction of vicinity intersections vs alpha — the §2.3
  protocol: sample nodes, build *their* vicinities only, and check
  ``Gamma(s) ∩ Gamma(t) != {}`` for every pair.  Landmark endpoints
  have empty vicinities and count as non-intersecting, matching
  Definition 1 (the full oracle answers those via tables instead).
* **(center)** CDF of boundary size as a fraction of ``n`` at
  alpha = 4, over the sampled nodes (the paper plots sampled nodes
  too).
* **(right)** mean vicinity radius ``d(u, l(u))`` vs alpha, computed
  exactly for *all* nodes with one multi-source BFS from ``L``.

Building vicinities only for the sampled nodes keeps the alpha sweep
tractable at any graph size — the full offline phase is only needed
for Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.landmarks import calibrate_scale, sample_landmarks
from repro.core.vicinity import compute_boundary
from repro.experiments.reporting import render_series
from repro.graph.csr import CSRGraph
from repro.graph.traversal.bounded import truncated_bfs_ball
from repro.graph.traversal.vectorized import multi_source_bfs_vectorized
from repro.utils.rng import RngLike, ensure_rng

#: The alpha grid of Figure 2 (1/64 .. 64, powers of 4).
DEFAULT_ALPHAS = (1 / 64, 1 / 16, 1 / 4, 1, 4, 16, 64)


@dataclass
class Figure2Point:
    """Aggregates for one (alpha, run) cell."""

    alpha: float
    intersection_fraction: float
    mean_radius: float
    mean_vicinity_size: float
    num_landmarks: int


@dataclass
class Figure2Result:
    """All three panels for one dataset."""

    dataset: str
    n: int
    num_edges: int
    points: list[Figure2Point] = field(default_factory=list)
    boundary_fractions: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def curve(self) -> list[tuple[float, float, float, float]]:
        """Per-alpha means: (alpha, intersection, radius, vicinity size)."""
        by_alpha: dict[float, list[Figure2Point]] = {}
        for p in self.points:
            by_alpha.setdefault(p.alpha, []).append(p)
        out = []
        for alpha in sorted(by_alpha):
            cell = by_alpha[alpha]
            out.append(
                (
                    alpha,
                    float(np.mean([p.intersection_fraction for p in cell])),
                    float(np.mean([p.mean_radius for p in cell])),
                    float(np.mean([p.mean_vicinity_size for p in cell])),
                )
            )
        return out

    def boundary_cdf(self, points: int = 20) -> list[tuple[float, float]]:
        """(boundary size / n, cumulative fraction) pairs at alpha = 4."""
        if self.boundary_fractions.size == 0:
            return []
        ordered = np.sort(self.boundary_fractions)
        cumulative = np.arange(1, ordered.size + 1) / ordered.size
        picks = np.linspace(0, ordered.size - 1, min(points, ordered.size))
        picks = picks.astype(np.int64)
        return [(float(ordered[i]), float(cumulative[i])) for i in picks]


def run_figure2(
    graph: CSRGraph,
    *,
    dataset: str = "graph",
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    sample_nodes: int = 64,
    runs: int = 2,
    seed: RngLike = 7,
    vicinity_floor: float = 0.0,
    boundary_alpha: float = 4.0,
) -> Figure2Result:
    """Run the Figure 2 protocol on one graph.

    Args:
        graph: the (unweighted, ideally connected) network.
        dataset: label for reporting.
        alphas: the sweep grid.
        sample_nodes: nodes sampled per run (the paper uses 1000).
        runs: independent repetitions (the paper uses 10).
        seed: master seed; each run uses a spawned child stream.
        vicinity_floor: optional minimum vicinity size as a multiple of
            ``alpha * sqrt(n)`` (0 = paper-exact Definition 1).
        boundary_alpha: which alpha's boundary sizes feed the CDF panel.

    Returns:
        The collected :class:`Figure2Result`.
    """
    master = ensure_rng(seed)
    result = Figure2Result(dataset=dataset, n=graph.n, num_edges=graph.num_edges)
    boundary_fractions: list[float] = []
    adj = graph.adjacency()
    for run_rng in master.spawn(runs):
        sample = run_rng.choice(graph.n, size=min(sample_nodes, graph.n), replace=False)
        for alpha in alphas:
            scale = calibrate_scale(graph, alpha, rng=run_rng)
            landmarks = sample_landmarks(graph, alpha, rng=run_rng, scale=scale)
            flags = landmarks.is_landmark
            min_size = (
                int(vicinity_floor * alpha * np.sqrt(graph.n))
                if vicinity_floor > 0
                else None
            )
            vicinities: dict[int, frozenset[int]] = {}
            sizes: list[int] = []
            for u in sample.tolist():
                u = int(u)
                if flags[u]:
                    vicinities[u] = frozenset()
                    continue
                ball = truncated_bfs_ball(graph, u, flags, min_size=min_size)
                members = frozenset(ball.gamma)
                vicinities[u] = members
                sizes.append(len(members))
                if alpha == boundary_alpha:
                    boundary = compute_boundary(ball.gamma, members, adj)
                    boundary_fractions.append(len(boundary) / graph.n)
            hits = 0
            total = 0
            ids = sample.tolist()
            for i, s in enumerate(ids):
                vs = vicinities[s]
                for t in ids[i + 1:]:
                    total += 1
                    if vs & vicinities[t]:
                        hits += 1
            # Radius panel: exact d(u, L) for every node in one sweep.
            radii = multi_source_bfs_vectorized(graph, landmarks.ids)
            non_landmark = np.ones(graph.n, dtype=bool)
            non_landmark[landmarks.ids] = False
            reachable = (radii >= 0) & non_landmark
            mean_radius = float(radii[reachable].mean()) if reachable.any() else 0.0
            result.points.append(
                Figure2Point(
                    alpha=float(alpha),
                    intersection_fraction=hits / total if total else 0.0,
                    mean_radius=mean_radius,
                    mean_vicinity_size=float(np.mean(sizes)) if sizes else 0.0,
                    num_landmarks=landmarks.size,
                )
            )
    result.boundary_fractions = np.asarray(boundary_fractions, dtype=np.float64)
    return result


def render_figure2(results: Sequence[Figure2Result]) -> str:
    """Render all three panels for a set of datasets."""
    blocks = []
    for result in results:
        rows = [
            (f"{alpha:g}", f"{inter:.4f}", f"{radius:.2f}", f"{size:,.0f}")
            for alpha, inter, radius, size in result.curve()
        ]
        blocks.append(
            render_series(
                "alpha",
                ["intersection fraction", "mean radius (hops)", "mean |Gamma|"],
                rows,
                title=(
                    f"Figure 2 (left+right): {result.dataset} "
                    f"(n={result.n:,}, m={result.num_edges:,})"
                ),
            )
        )
        cdf_rows = [
            (f"{x:.5f}", f"{y:.3f}") for x, y in result.boundary_cdf()
        ]
        if cdf_rows:
            blocks.append(
                render_series(
                    "boundary size / n",
                    ["CDF"],
                    cdf_rows,
                    title=f"Figure 2 (center): {result.dataset} boundary CDF at alpha=4",
                )
            )
    return "\n\n".join(blocks)
