"""Fixed-width text rendering for reproduced tables and figures.

The paper's artefacts are tables and line plots; in a terminal-first
library we render tables directly and plots as aligned data series
(the numbers are what reproduction is judged on — see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width table.

    Numbers are right-aligned, text left-aligned; column widths adapt
    to content.
    """
    materialised = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if _is_numeric(cell):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in materialised)
    return "\n".join(out)


def render_series(
    x_label: str,
    y_labels: Sequence[str],
    points: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a figure as aligned ``x, y1, y2, ...`` data columns."""
    return render_table([x_label, *y_labels], points, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.4g}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "")
    stripped = stripped.replace("x", "").replace("%", "").replace("e", "")
    return stripped.isdigit() and any(ch.isdigit() for ch in cell)
