"""Experiment harness: regenerate every table and figure of the paper.

Each module owns one artefact and returns structured results that both
the benchmark suite and the CLI render:

* :mod:`~repro.experiments.table2`   — dataset statistics;
* :mod:`~repro.experiments.figure2`  — intersection fraction vs alpha
  (left), boundary-size CDF (center), vicinity radius vs alpha (right);
* :mod:`~repro.experiments.table3`   — query time and probe counts vs
  BFS / bidirectional BFS, with speed-ups;
* :mod:`~repro.experiments.memory_table` — §3.2 memory accounting;
* :mod:`~repro.experiments.tradeoff` — the latency/memory/accuracy
  alpha sweep (ablation A3);
* :mod:`~repro.experiments.workloads` — the §2.3 random-pair protocol;
* :mod:`~repro.experiments.reporting` — fixed-width text rendering.
"""

from repro.experiments.workloads import PairWorkload, sample_pair_workload
from repro.experiments.reporting import render_series, render_table
from repro.experiments.table2 import Table2Row, run_table2
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.table3 import Table3Row, run_table3
from repro.experiments.memory_table import MemoryRow, run_memory_table
from repro.experiments.tradeoff import TradeoffRow, run_tradeoff

__all__ = [
    "PairWorkload",
    "sample_pair_workload",
    "render_table",
    "render_series",
    "Table2Row",
    "run_table2",
    "Figure2Result",
    "run_figure2",
    "Table3Row",
    "run_table3",
    "MemoryRow",
    "run_memory_table",
    "TradeoffRow",
    "run_tradeoff",
]
