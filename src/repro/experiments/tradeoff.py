"""Ablation A3: the latency / memory / accuracy trade-off across alpha.

The paper's abstract claims a "unique trade-off between latency, memory
and accuracy"; this sweep quantifies all three on one dataset as alpha
moves through the Figure 2 grid, with optional sweeps of the
``vicinity_floor`` extension (ablation A4) and the sampling-probability
scale (the two readings of the §2.2 formula).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.experiments.reporting import render_table
from repro.experiments.workloads import sample_pair_workload
from repro.graph.csr import CSRGraph
from repro.utils.rng import ensure_rng


@dataclass
class TradeoffRow:
    """One configuration's three-way measurement."""

    alpha: float
    vicinity_floor: float
    answered_fraction: float
    mean_query_us: float
    mean_probes: float
    entries_per_node: float
    num_landmarks: int
    build_seconds: float


def run_tradeoff(
    graph: CSRGraph,
    *,
    alphas: Sequence[float] = (0.25, 1.0, 4.0, 16.0),
    floors: Sequence[float] = (0.0,),
    seed: int = 7,
    sample_nodes: int = 40,
) -> list[TradeoffRow]:
    """Sweep alpha (and optionally the floor) on one graph."""
    rows = []
    rng = ensure_rng(seed)
    workload = sample_pair_workload(graph, min(sample_nodes, graph.n), rng=rng)
    for floor in floors:
        for alpha in alphas:
            config = OracleConfig(
                alpha=alpha, seed=seed, fallback="none", vicinity_floor=floor
            )
            start = time.perf_counter()
            oracle = VicinityOracle.build(graph, config=config)
            build_seconds = time.perf_counter() - start
            oracle.engine  # flatten outside the timed online loop
            answered = 0
            total = 0
            start = time.perf_counter()
            for s, t in workload.pairs():
                if oracle.query(s, t).distance is not None:
                    answered += 1
                total += 1
            elapsed = time.perf_counter() - start
            memory = oracle.memory()
            rows.append(
                TradeoffRow(
                    alpha=float(alpha),
                    vicinity_floor=float(floor),
                    answered_fraction=answered / total if total else 0.0,
                    mean_query_us=elapsed / max(total, 1) * 1e6,
                    mean_probes=oracle.counters.mean_probes,
                    entries_per_node=memory.entries_per_node,
                    num_landmarks=oracle.index.landmarks.size,
                    build_seconds=build_seconds,
                )
            )
    return rows


def render_tradeoff(rows: Sequence[TradeoffRow], *, dataset: str = "graph") -> str:
    """Render the trade-off sweep."""
    return render_table(
        [
            "alpha",
            "floor",
            "answered",
            "query (us)",
            "avg probes",
            "entries/node",
            "|L|",
            "build (s)",
        ],
        [
            (
                f"{r.alpha:g}",
                f"{r.vicinity_floor:g}",
                f"{r.answered_fraction:.2%}",
                f"{r.mean_query_us:,.0f}",
                f"{r.mean_probes:,.0f}",
                f"{r.entries_per_node:,.1f}",
                r.num_landmarks,
                f"{r.build_seconds:.1f}",
            )
            for r in rows
        ],
        title=f"Latency/memory/accuracy trade-off on {dataset}",
    )
