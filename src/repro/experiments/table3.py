"""Table 3: query time and hash-probe counts vs BFS / bidirectional BFS.

For every dataset: build the oracle at alpha = 4, run the §2.3 pair
workload through Algorithm 1, and time the two online baselines on a
subsample of the same pairs (plain BFS is orders of magnitude too slow
for the full quadratic workload — exactly the paper's point).  Reports
the paper's columns — average/worst hash look-ups, our query time, BFS
time, bidirectional-BFS time, speed-up vs bidirectional BFS — plus the
fraction of pairs Algorithm 1 answered (the §3.2 accuracy claim).

Absolute times are CPython, not C++-on-an-i7; the reproduction targets
are the *ratios* and their growth with density (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.exact import BFSBaseline, BidirectionalBaseline
from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.datasets.social import available, generate
from repro.experiments.reporting import render_table
from repro.experiments.workloads import sample_pair_workload
from repro.graph.csr import CSRGraph
from repro.utils.rng import ensure_rng


@dataclass
class Table3Row:
    """One dataset's reproduced Table 3 row."""

    dataset: str
    n: int
    num_edges: int
    avg_probes: float
    worst_probes: int
    our_time_ms: float
    bfs_time_ms: float
    bidirectional_time_ms: float
    answered_fraction: float
    build_seconds: float

    @property
    def speedup_vs_bfs(self) -> float:
        """BFS time / our time."""
        return self.bfs_time_ms / self.our_time_ms if self.our_time_ms else 0.0

    @property
    def speedup_vs_bidirectional(self) -> float:
        """Bidirectional-BFS time / our time (the paper's column)."""
        return (
            self.bidirectional_time_ms / self.our_time_ms if self.our_time_ms else 0.0
        )


def run_table3_for_graph(
    graph: CSRGraph,
    *,
    dataset: str = "graph",
    alpha: float = 4.0,
    seed: int = 7,
    sample_nodes: int = 48,
    bfs_pairs: int = 10,
    bidirectional_pairs: int = 60,
    vicinity_floor: float = 0.75,
    oracle: Optional[VicinityOracle] = None,
) -> Table3Row:
    """Run the Table 3 protocol on one prepared graph.

    Args:
        graph: the network.
        dataset: label for reporting.
        alpha: vicinity parameter (the paper uses 4).
        seed: workload + build seed.
        sample_nodes: workload sample size (all pairs are queried).
        bfs_pairs / bidirectional_pairs: baseline timing subsample sizes.
        vicinity_floor: operating profile — 0 reproduces Definition 1
            verbatim; 0.75 is the guarded profile whose answered
            fraction matches the paper's 99.9 % claim on synthetic
            stand-ins (both are recorded in EXPERIMENTS.md).
        oracle: pass a prebuilt oracle to skip the offline phase.
    """
    build_start = time.perf_counter()
    if oracle is None:
        config = OracleConfig(
            alpha=alpha, seed=seed, fallback="none", vicinity_floor=vicinity_floor
        )
        oracle = VicinityOracle.build(graph, config=config)
    build_seconds = time.perf_counter() - build_start

    rng = ensure_rng(seed)
    workload = sample_pair_workload(graph, min(sample_nodes, graph.n), rng=rng)

    oracle.counters.reset()
    oracle.engine  # flatten outside the timed online loop
    answered = 0
    total = 0
    start = time.perf_counter()
    for s, t in workload.pairs():
        result = oracle.query(s, t)
        total += 1
        if result.distance is not None:
            answered += 1
    our_time_ms = (time.perf_counter() - start) / max(total, 1) * 1e3

    bfs = BFSBaseline(graph)
    start = time.perf_counter()
    bfs_count = 0
    for s, t in workload.random_pairs(bfs_pairs, rng=rng):
        bfs.distance(s, t)
        bfs_count += 1
    bfs_time_ms = (time.perf_counter() - start) / max(bfs_count, 1) * 1e3

    bidirectional = BidirectionalBaseline(graph)
    start = time.perf_counter()
    bi_count = 0
    for s, t in workload.random_pairs(bidirectional_pairs, rng=rng):
        bidirectional.distance(s, t)
        bi_count += 1
    bidirectional_time_ms = (time.perf_counter() - start) / max(bi_count, 1) * 1e3

    return Table3Row(
        dataset=dataset,
        n=graph.n,
        num_edges=graph.num_edges,
        avg_probes=oracle.counters.mean_probes,
        worst_probes=oracle.counters.worst_probes,
        our_time_ms=our_time_ms,
        bfs_time_ms=bfs_time_ms,
        bidirectional_time_ms=bidirectional_time_ms,
        answered_fraction=answered / total if total else 0.0,
        build_seconds=build_seconds,
    )


def run_table3(
    names: Optional[Sequence[str]] = None,
    *,
    scale: float = 0.002,
    alpha: float = 4.0,
    seed: int = 7,
    sample_nodes: int = 48,
    vicinity_floor: float = 0.75,
) -> list[Table3Row]:
    """Run Table 3 across the calibrated datasets."""
    rows = []
    for name in names or available():
        graph = generate(name, scale=scale, seed=seed)
        rows.append(
            run_table3_for_graph(
                graph,
                dataset=name,
                alpha=alpha,
                seed=seed,
                sample_nodes=sample_nodes,
                vicinity_floor=vicinity_floor,
            )
        )
    return rows


def render_table3(rows: Sequence[Table3Row]) -> str:
    """Render the reproduced Table 3."""
    return render_table(
        [
            "Dataset",
            "n",
            "m",
            "avg look-ups",
            "worst look-ups",
            "ours (ms)",
            "BFS (ms)",
            "BiBFS (ms)",
            "speed-up BFS",
            "speed-up BiBFS",
            "answered",
        ],
        [
            (
                r.dataset,
                r.n,
                r.num_edges,
                f"{r.avg_probes:,.1f}",
                r.worst_probes,
                f"{r.our_time_ms:.3f}",
                f"{r.bfs_time_ms:.1f}",
                f"{r.bidirectional_time_ms:.2f}",
                f"{r.speedup_vs_bfs:,.0f}x",
                f"{r.speedup_vs_bidirectional:,.0f}x",
                f"{r.answered_fraction:.2%}",
            )
            for r in rows
        ],
        title="Table 3: query time at alpha=4",
    )
