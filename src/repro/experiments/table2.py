"""Table 2: dataset statistics.

Reports, for each calibrated stand-in, the node count, directed arc
count and mutualised undirected link count — the same three columns the
paper prints — alongside the full-scale targets so the down-scaling is
transparent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.datasets.social import available, generate_directed, spec
from repro.experiments.reporting import render_table
from repro.utils.rng import RngLike


@dataclass
class Table2Row:
    """One dataset's reproduced Table 2 row."""

    dataset: str
    nodes: int
    directed_links: int
    undirected_links: int
    paper_nodes: int
    paper_directed_links: int
    paper_undirected_links: int

    @property
    def density_ratio(self) -> float:
        """Generated vs paper average degree (should be ~1)."""
        ours = 2.0 * self.undirected_links / self.nodes
        target = 2.0 * self.paper_undirected_links / self.paper_nodes
        return ours / target


def run_table2(
    names: Optional[Sequence[str]] = None,
    *,
    scale: float = 0.004,
    seed: RngLike = 42,
) -> list[Table2Row]:
    """Generate every dataset and collect its Table 2 statistics."""
    rows = []
    for name in names or available():
        dataset = spec(name)
        digraph = generate_directed(name, scale=scale, seed=seed)
        undirected = digraph.as_undirected()
        rows.append(
            Table2Row(
                dataset=name,
                nodes=digraph.n,
                directed_links=digraph.num_arcs,
                undirected_links=undirected.num_edges,
                paper_nodes=dataset.paper_nodes,
                paper_directed_links=dataset.paper_directed_links,
                paper_undirected_links=dataset.paper_undirected_links,
            )
        )
    return rows


def render_table2(rows: Sequence[Table2Row]) -> str:
    """Render reproduced rows next to the paper's full-scale numbers."""
    return render_table(
        [
            "Topology",
            "# Nodes",
            "# Directed",
            "# Undirected",
            "paper Nodes",
            "paper Dir",
            "paper Undir",
            "density vs paper",
        ],
        [
            (
                r.dataset,
                r.nodes,
                r.directed_links,
                r.undirected_links,
                r.paper_nodes,
                r.paper_directed_links,
                r.paper_undirected_links,
                f"{r.density_ratio:.2f}",
            )
            for r in rows
        ],
        title="Table 2: social network datasets (scaled stand-ins)",
    )
