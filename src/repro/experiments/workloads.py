"""The paper's query workload (§2.3).

Protocol: sample ``k`` random nodes, query every unordered pair
(``k (k - 1) / 2`` source-destination pairs), repeat over several
independent runs — "resulting in roughly 10 million unbiased samples"
at the paper's ``k = 1000 x 10`` runs.  The same protocol drives
Figure 2(a) and Table 3 here, scaled to interpreter speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.exceptions import QueryError
from repro.graph.csr import CSRGraph
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class PairWorkload:
    """One run's node sample and its implied pair set."""

    nodes: np.ndarray

    @property
    def num_pairs(self) -> int:
        """Number of unordered source-destination pairs."""
        k = self.nodes.size
        return k * (k - 1) // 2

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Yield every unordered pair of sampled nodes."""
        sample = self.nodes.tolist()
        for i, s in enumerate(sample):
            for t in sample[i + 1:]:
                yield s, t

    def random_pairs(self, count: int, rng: RngLike = None) -> Iterator[Tuple[int, int]]:
        """Yield ``count`` pairs drawn uniformly from the pair set.

        Used when a comparator (plain BFS) is too slow to run the full
        quadratic workload; drawing from the same sample keeps the
        distributions comparable.
        """
        generator = ensure_rng(rng)
        sample = self.nodes
        if sample.size < 2:
            raise QueryError("workload needs at least two sampled nodes")
        for _ in range(count):
            i, j = generator.choice(sample.size, size=2, replace=False)
            yield int(sample[i]), int(sample[j])


def sample_pair_workload(
    graph: CSRGraph, num_nodes: int, *, rng: RngLike = None
) -> PairWorkload:
    """Sample the §2.3 workload: ``num_nodes`` distinct random nodes."""
    if num_nodes < 2:
        raise QueryError("num_nodes must be at least 2")
    if num_nodes > graph.n:
        raise QueryError(f"cannot sample {num_nodes} nodes from a graph of {graph.n}")
    generator = ensure_rng(rng)
    nodes = generator.choice(graph.n, size=num_nodes, replace=False)
    return PairWorkload(nodes=np.sort(nodes.astype(np.int64)))
