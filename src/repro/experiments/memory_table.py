"""§3.2 memory accounting: the paper's ``sqrt(n)/4`` claim.

Builds the oracle per dataset and reports entries/node against the
``4 sqrt(n)`` target, the APSP ratio under the paper's own accounting
(vicinity entries only — the "at least 550x" for full-scale
LiveJournal), and the honest all-components ratio including landmark
tables and boundary lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.datasets.social import available, generate
from repro.experiments.reporting import render_table
from repro.graph.csr import CSRGraph


@dataclass
class MemoryRow:
    """One dataset's memory accounting."""

    dataset: str
    n: int
    entries_per_node: float
    target_entries_per_node: float
    apsp_ratio_paper: float
    apsp_ratio_expected: float
    apsp_ratio_total: float
    model_bytes: int
    table_entries: int


def run_memory_for_graph(
    graph: CSRGraph,
    *,
    dataset: str = "graph",
    alpha: float = 4.0,
    seed: int = 7,
    vicinity_floor: float = 0.0,
    oracle: Optional[VicinityOracle] = None,
) -> MemoryRow:
    """Account for one graph's built index."""
    if oracle is None:
        config = OracleConfig(
            alpha=alpha, seed=seed, fallback="none", vicinity_floor=vicinity_floor
        )
        oracle = VicinityOracle.build(graph, config=config)
    report = oracle.memory()
    return MemoryRow(
        dataset=dataset,
        n=graph.n,
        entries_per_node=report.entries_per_node,
        target_entries_per_node=alpha * math.sqrt(graph.n),
        apsp_ratio_paper=report.apsp_ratio_vicinities_only,
        apsp_ratio_expected=math.sqrt(graph.n) / alpha,
        apsp_ratio_total=report.apsp_ratio_total,
        model_bytes=report.model_bytes,
        table_entries=report.table_entries,
    )


def run_memory_table(
    names: Optional[Sequence[str]] = None,
    *,
    scale: float = 0.002,
    alpha: float = 4.0,
    seed: int = 7,
    vicinity_floor: float = 0.0,
) -> list[MemoryRow]:
    """Run the memory accounting across datasets."""
    rows = []
    for name in names or available():
        graph = generate(name, scale=scale, seed=seed)
        rows.append(
            run_memory_for_graph(
                graph,
                dataset=name,
                alpha=alpha,
                seed=seed,
                vicinity_floor=vicinity_floor,
            )
        )
    return rows


def render_memory_table(rows: Sequence[MemoryRow]) -> str:
    """Render the §3.2 memory comparison."""
    return render_table(
        [
            "Dataset",
            "n",
            "entries/node",
            "target 4*sqrt(n)",
            "APSP ratio (paper)",
            "expected sqrt(n)/4",
            "APSP ratio (total)",
            "model bytes",
        ],
        [
            (
                r.dataset,
                r.n,
                f"{r.entries_per_node:,.1f}",
                f"{r.target_entries_per_node:,.1f}",
                f"{r.apsp_ratio_paper:,.0f}x",
                f"{r.apsp_ratio_expected:,.0f}x",
                f"{r.apsp_ratio_total:,.0f}x",
                r.model_bytes,
            )
            for r in rows
        ],
        title="Memory accounting (Section 3.2)",
    )
