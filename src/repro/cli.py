"""Command-line interface: ``repro-paths``.

Subcommands mirror the library's workflow:

* ``generate``   — synthesise a calibrated dataset to a file;
* ``stats``      — basic statistics of a stored graph;
* ``build``      — run the offline phase and persist the oracle;
* ``query``      — answer one query from a persisted oracle;
* ``serve``      — run the query service from a persisted oracle:
  JSON-lines over stdin, the asyncio network front end
  (``--transport tcp`` / ``http``), or the ``--bench`` self-driving
  workload;
* ``experiment`` — regenerate a paper table/figure (table2, figure2,
  table3, memory, tradeoff).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional, Sequence

from repro import datasets
from repro.core.config import OracleConfig
from repro.core.index import VicinityIndex
from repro.core.oracle import VicinityOracle
from repro.exceptions import ReproError
from repro.graph.degree import average_degree, max_degree
from repro.io.binary import load_graph, save_graph
from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.oracle_store import load_index, save_index


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-paths",
        description="Vicinity-intersection shortest-path oracle (WOSN'12 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesise a calibrated dataset")
    gen.add_argument("dataset", choices=datasets.available())
    gen.add_argument("--scale", type=float, default=0.002, help="linear node scale")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", required=True, help=".npz or .txt output path")

    stats = sub.add_parser("stats", help="print statistics of a stored graph")
    stats.add_argument("graph", help=".npz or edge-list path")

    build = sub.add_parser("build", help="run the offline phase")
    build.add_argument("graph", help=".npz or edge-list path")
    build.add_argument("--alpha", type=float, default=4.0)
    build.add_argument("--seed", type=int, default=7)
    build.add_argument("--floor", type=float, default=0.0, help="vicinity_floor")
    build.add_argument(
        "--representation", choices=["flat", "dict"], default="flat",
        help="offline pipeline: 'flat' (batched, dict-free, the fast "
        "path) or 'dict' (per-node records, the parity baseline)",
    )
    build.add_argument(
        "--workers", type=int, default=1,
        help="flat pipeline: worker processes sharing the CSR via "
        "shared memory (1 = in-process)",
    )
    build.add_argument(
        "--out", required=True,
        help="oracle store output path (single-file flat binary, mmap-able)",
    )

    query = sub.add_parser("query", help="answer one query from a stored oracle")
    query.add_argument("oracle", help="oracle store path (flat binary or legacy .npz)")
    query.add_argument("source", type=int)
    query.add_argument("target", type=int)
    query.add_argument("--path", action="store_true", help="also print the path")
    query.add_argument(
        "--explain", action="store_true", help="print the Algorithm 1 resolution trace"
    )

    serve = sub.add_parser("serve", help="run the query service from a stored oracle")
    serve.add_argument(
        "oracle", help="oracle store path from `build` (flat binary or legacy .npz)"
    )
    serve.add_argument(
        "--cache-size", type=int, default=65536,
        help="LRU result-cache capacity; 0 disables caching",
    )
    serve.add_argument(
        "--shards", type=int, default=0,
        help="serve through N in-process shard workers (0 = single machine)",
    )
    serve.add_argument(
        "--backend", choices=["threads", "procpool"], default="threads",
        help="sharded mode: worker threads (GIL-bound, instant startup) or "
        "worker processes over a shared-memory index (true parallelism)",
    )
    serve.add_argument(
        "--replicate-tables", action="store_true",
        help="sharded mode: copy landmark tables onto every shard",
    )
    serve.add_argument(
        "--mmap", action="store_true",
        help="memory-map the stored arrays instead of loading them "
        "(flat-format stores): zero-copy startup, pages shared across "
        "every worker and process serving the same file; fallback "
        "searches are unavailable (the graph stays on disk)",
    )
    serve.add_argument(
        "--kernels", choices=["auto", "numpy", "native"], default="auto",
        help="compute tier for the hot query kernels — 'native': the "
        "compiled C extension (error if unavailable); 'numpy': the "
        "vectorised pure-Python tier; 'auto' (default): native when the "
        "extension is built and the store layout matches, else numpy "
        "(also via REPRO_KERNELS)",
    )
    serve.add_argument(
        "--worker-cache", type=int, default=0,
        help="procpool backend: per-worker result-cache capacity "
        "(0 disables; repeated expensive pairs are then served from "
        "worker memory, skipping the kernel and the modelled round trip)",
    )
    serve.add_argument(
        "--transport-plane", choices=["pipe", "ring"], default=None,
        help="procpool backend: how request/response frames move between "
        "coordinator and shard workers — 'ring' (default): shared-memory "
        "result rings, no serialisation; 'pipe': one encoded frame per "
        "pipe message",
    )
    serve.add_argument(
        "--sub-batch", type=int, default=0,
        help="sharded mode: split each shard's share of a batch into "
        "request frames of at most this many pairs (0 = one frame per "
        "shard per batch)",
    )
    serve.add_argument(
        "--replicas", type=int, default=1,
        help="sharded mode: interchangeable workers per shard; "
        "sub-batches are routed to the replica with the least "
        "outstanding work (helps Zipf-hot shards)",
    )
    serve.add_argument(
        "--pin-workers", action="store_true",
        help="procpool backend: pin each worker process to one core "
        "(round-robin over the coordinator's affinity mask; no-op "
        "where unsupported)",
    )
    serve.add_argument(
        "--supervise", action="store_true",
        help="sharded mode: supervise shard workers — sub-batch "
        "deadlines, retry with backoff, failover to surviving "
        "replicas, automatic restart of dead workers, and per-shard "
        "circuit breakers that answer from the landmark estimate "
        "(method \"estimate\", \"degraded\": true) while a shard is "
        "fully dark",
    )
    serve.add_argument(
        "--sub-batch-deadline", type=float, default=None, metavar="S",
        help="sharded mode: per-sub-batch deadline in seconds; with "
        "--supervise this bounds every wait before retry/failover "
        "kicks in (default 5), without it a miss raises a typed "
        "timeout instead of hanging",
    )
    serve.add_argument(
        "--retry-budget", type=int, default=None, metavar="N",
        help="with --supervise: attempts per failed sub-batch before "
        "the shard's breaker trips (default 3)",
    )
    serve.add_argument(
        "--max-restarts", type=int, default=None, metavar="N",
        help="with --supervise: worker restarts allowed per sliding "
        "window before the worker is quarantined (default 5)",
    )
    serve.add_argument(
        "--breaker-failures", type=int, default=None, metavar="N",
        help="with --supervise: consecutive shard failures that open "
        "its circuit breaker (default 2)",
    )
    serve.add_argument(
        "--breaker-reset", type=float, default=None, metavar="S",
        help="with --supervise: seconds an open breaker waits before "
        "letting one half-open probe through (default 5)",
    )
    serve.add_argument(
        "--inject-faults", default=None, metavar="PLAN",
        help="procpool backend: deterministic fault-injection plan for "
        "drills — a preset (churn[:N], kill:W[:N], dark:W[:N], "
        "stall:W[:N[:S]]) or a JSON object mapping worker ids to rule "
        "fields (see repro.service.faults)",
    )
    serve.add_argument(
        "--transport", choices=["stdio", "tcp", "http"], default="stdio",
        help="stdio: the single-client JSON-lines loop; tcp: the asyncio "
        "multi-client server (same JSON-lines protocol, cross-client "
        "request coalescing); http: minimal HTTP/1.1 (POST /query, "
        "GET /stats) on the same coalescing core",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="tcp/http: bind address"
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="tcp/http: bind port (0 picks a free port; the chosen "
        "address is printed to stderr as transport://host:port)",
    )
    serve.add_argument(
        "--coalesce-us", type=float, default=250.0,
        help="tcp/http: coalescing window in microseconds — requests "
        "from different connections arriving within it are folded into "
        "one executor batch (0 flushes every event-loop turn)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=1024,
        help="tcp/http: max requests folded into one executor call "
        "(a full window dispatches immediately)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=4096,
        help="tcp/http: soft admission limit on queued+in-flight "
        "requests; beyond it requests are answered with "
        '{"error": "overloaded", "retry_after_ms": ...}',
    )
    serve.add_argument(
        "--hard-pending", type=int, default=0,
        help="tcp/http: hard limit beyond which the server stops "
        "reading sockets so TCP pushes back (0 = 4x --max-pending)",
    )
    serve.add_argument(
        "--degrade", action="store_true",
        help="tcp/http: past the soft limit, answer distance-only "
        "queries from the landmark triangulation estimate "
        '(method "estimate", "degraded": true) instead of an overload '
        "error",
    )
    serve.add_argument(
        "--deadline-ms", "--default-deadline-ms", type=float, default=None,
        dest="deadline_ms",
        help="tcp/http: default per-request completion deadline in ms, "
        "applied to requests that carry no deadline_ms of their own; "
        "requests predicted or observed to miss it walk the degrade "
        "ladder instead of answering late",
    )
    serve.add_argument(
        "--slo-p99-ms", type=float, default=None,
        help="tcp/http: target p99 completion time; with "
        "--adaptive-limit, completions above it count as congestion "
        "signals even when the request's own deadline was met",
    )
    serve.add_argument(
        "--degrade-ladder", default="exact,estimate,shed",
        help="tcp/http: comma-separated degrade ladder for deadline "
        "misses (must start with 'exact'; 'shed' is the implicit "
        "terminal rung)",
    )
    serve.add_argument(
        "--adaptive-limit", action="store_true",
        help="tcp/http: replace the static soft admission limit with "
        "an AIMD window driven by deadline hits/misses (--hard-pending "
        "stays the backstop)",
    )
    serve.add_argument(
        "--idle-timeout-s", type=float, default=None,
        help="tcp/http: close connections that send nothing for this "
        "long (a clean error frame on tcp, 408 on http)",
    )
    serve.add_argument(
        "--bench", action="store_true",
        help="self-drive a Zipf workload instead of reading stdin",
    )
    serve.add_argument("--queries", type=int, default=20000, help="bench query count")
    serve.add_argument("--batch-size", type=int, default=256, help="bench batch size")
    serve.add_argument(
        "--zipf", type=float, default=1.0, help="bench workload skew exponent"
    )
    serve.add_argument("--seed", type=int, default=7, help="bench workload seed")
    serve.add_argument(
        "--json", action="store_true",
        help="bench mode: emit the full report as JSON instead of text",
    )

    experiment = sub.add_parser("experiment", help="regenerate a paper artefact")
    experiment.add_argument(
        "name", choices=["table2", "figure2", "table3", "memory", "tradeoff"]
    )
    experiment.add_argument("--scale", type=float, default=0.002)
    experiment.add_argument("--seed", type=int, default=7)
    experiment.add_argument("--alpha", type=float, default=4.0)
    experiment.add_argument("--floor", type=float, default=0.75)
    experiment.add_argument(
        "--datasets", nargs="*", default=None, help="subset of dataset names"
    )
    return parser


def _load_any_graph(path: str):
    if path.endswith(".npz"):
        return load_graph(path)
    return read_edgelist(path)


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = datasets.generate(args.dataset, scale=args.scale, seed=args.seed)
    if args.out.endswith(".npz"):
        save_graph(graph, args.out)
    else:
        write_edgelist(graph, args.out, header=f"{args.dataset} scale={args.scale}")
    print(f"wrote {graph!r} to {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_any_graph(args.graph)
    print(graph)
    print(f"average degree : {average_degree(graph):.2f}")
    print(f"max degree     : {max_degree(graph)}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    graph = _load_any_graph(args.graph)
    config = OracleConfig(alpha=args.alpha, seed=args.seed, vicinity_floor=args.floor)
    started = time.perf_counter()
    index = VicinityIndex.build(
        graph, config, representation=args.representation, workers=args.workers
    )
    elapsed = time.perf_counter() - started
    save_index(index, args.out)
    print(f"built {index!r} in {elapsed:.1f}s ({args.representation} pipeline)")
    if args.representation == "flat":
        # The record-level stats/memory reports would materialise every
        # per-node dict the flat pipeline just avoided; summarise from
        # the arrays instead.
        flat = index._flat_index
        print(
            f"mean vicinity size {flat.member_counts.mean():.1f}, "
            f"mean boundary size {flat.boundary_counts.mean():.1f}, "
            f"{flat.landmark_ids.size} landmark tables"
        )
    else:
        oracle = VicinityOracle(index)
        print(oracle.stats().summary())
        print(oracle.memory().summary())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    oracle = VicinityOracle(load_index(args.oracle))
    if args.explain:
        print(oracle.explain(args.source, args.target))
        return 0
    result = oracle.query(args.source, args.target, with_path=args.path)
    print(f"distance({args.source}, {args.target}) = {result.distance}")
    print(f"method = {result.method}; probes = {result.probes}")
    if args.path and result.path is not None:
        print(" -> ".join(str(v) for v in result.path))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service import (
        ServiceApp,
        render_bench_report,
        run_bench,
        serve_stdio,
    )

    if args.backend != "threads" and args.shards < 1:
        print(
            f"error: --backend {args.backend} requires --shards N (N >= 1); "
            "without shards the single-machine oracle serves",
            file=sys.stderr,
        )
        return 2
    if (args.transport_plane or args.pin_workers) and args.backend != "procpool":
        print(
            "error: --transport-plane/--pin-workers require "
            "--backend procpool (the threads backend is always inline)",
            file=sys.stderr,
        )
        return 2
    if args.inject_faults and args.backend != "procpool":
        print(
            "error: --inject-faults requires --backend procpool "
            "(faults execute inside worker processes)",
            file=sys.stderr,
        )
        return 2
    supervised_only = {
        "--retry-budget": args.retry_budget,
        "--max-restarts": args.max_restarts,
        "--breaker-failures": args.breaker_failures,
        "--breaker-reset": args.breaker_reset,
    }
    stray = [flag for flag, value in supervised_only.items() if value is not None]
    if stray and not args.supervise:
        print(
            f"error: {'/'.join(stray)} require --supervise",
            file=sys.stderr,
        )
        return 2
    # Invalid --worker-cache combinations are rejected by ServiceApp
    # itself (one copy of the rule); the ReproError handler in main()
    # turns that into a clean error line.
    # from_saved skips per-node dict materialisation entirely in
    # sharded mode (the workers probe the flattened arrays on both
    # backends).
    backend_kwargs = _shard_backend_kwargs(args)
    app = ServiceApp.from_saved(
        args.oracle,
        cache_size=args.cache_size,
        shards=args.shards,
        backend=args.backend,
        replicate_tables=args.replicate_tables,
        worker_cache_size=args.worker_cache,
        mmap=args.mmap,
        kernels=None if args.kernels == "auto" else args.kernels,
        **backend_kwargs,
    )
    try:
        if args.bench:
            report = run_bench(
                app,
                queries=args.queries,
                batch_size=args.batch_size,
                exponent=args.zipf,
                seed=args.seed,
            )
            if args.json:
                print(_json.dumps(report, indent=2))
            else:
                print(render_bench_report(report))
        else:
            mode = (
                f"{args.shards} shards ({args.backend})"
                if args.shards
                else "single machine"
            )
            mode += f", {app.kernels} kernels"
            if args.transport == "stdio":
                print(
                    f"serving {app.n:,}-node oracle ({mode}); "
                    'one JSON request per line ({"s": 0, "t": 5}, '
                    '{"pairs": [[0, 5]]}, {"cmd": "stats"}, {"cmd": "quit"})',
                    file=sys.stderr,
                )
                serve_stdio(app)
            else:
                _serve_network(app, args, mode)
    finally:
        app.close()
    return 0


def _shard_backend_kwargs(args: argparse.Namespace) -> dict:
    """Transport-plane options worth forwarding (non-defaults only).

    Only non-default values are forwarded so an unsharded serve never
    trips the "backend options require shards >= 1" guard.
    """
    kwargs = {}
    if args.transport_plane:
        kwargs["transport"] = args.transport_plane
    if args.sub_batch:
        kwargs["sub_batch"] = args.sub_batch
    if args.replicas > 1:
        kwargs["replicas"] = args.replicas
    if args.pin_workers:
        kwargs["pin_workers"] = True
    if args.supervise:
        from repro.service import SupervisorConfig

        overrides = {}
        if args.sub_batch_deadline is not None:
            overrides["deadline_s"] = args.sub_batch_deadline
        if args.retry_budget is not None:
            overrides["retries"] = args.retry_budget
        if args.max_restarts is not None:
            overrides["max_restarts"] = args.max_restarts
        if args.breaker_failures is not None:
            overrides["breaker_failures"] = args.breaker_failures
        if args.breaker_reset is not None:
            overrides["breaker_reset_s"] = args.breaker_reset
        kwargs["supervise"] = (
            SupervisorConfig(**overrides) if overrides else True
        )
    elif args.sub_batch_deadline is not None:
        # Unsupervised: the deadline still bounds every transport wait
        # (a miss raises a typed WorkerTimeout instead of hanging).
        kwargs["recv_deadline_s"] = args.sub_batch_deadline
    if args.inject_faults:
        kwargs["faults"] = args.inject_faults
    return kwargs


def _serve_network(app, args: argparse.Namespace, mode: str) -> None:
    """Run the asyncio front end until SIGTERM/SIGINT, then drain."""
    import asyncio
    import signal
    from functools import partial

    from repro.service import NetServer, ServiceApp, SloConfig

    # {"cmd": "reload"} rebuilds with the same serving options; the
    # fresh store is memory-mapped by default (zero-copy swap) unless
    # the request says otherwise.
    factory = partial(
        ServiceApp.from_saved,
        cache_size=args.cache_size,
        shards=args.shards,
        backend=args.backend,
        replicate_tables=args.replicate_tables,
        worker_cache_size=args.worker_cache,
        mmap=True,
        kernels=None if args.kernels == "auto" else args.kernels,
        **_shard_backend_kwargs(args),
    )

    async def _amain() -> None:
        server = NetServer(
            app,
            host=args.host,
            port=args.port,
            transport=args.transport,
            coalesce_us=args.coalesce_us,
            max_batch=args.max_batch,
            max_pending=args.max_pending,
            hard_pending=args.hard_pending,
            degrade=args.degrade,
            slo=SloConfig(
                default_deadline_ms=args.deadline_ms,
                slo_p99_ms=args.slo_p99_ms,
                ladder=args.degrade_ladder,
                adaptive_limit=args.adaptive_limit,
            ),
            idle_timeout_s=args.idle_timeout_s,
            app_factory=factory,
        )
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except NotImplementedError:  # platforms without signal support
                pass
        # Machine-parseable "listening" line: smoke drivers read the
        # bound port from it (--port 0 picks a free one).
        print(
            f"serving {app.n:,}-node oracle ({mode}) on "
            f"{server.transport}://{server.host}:{server.port} "
            f"(coalesce {args.coalesce_us:g} us, max-batch {args.max_batch}, "
            f"soft {server.coalescer.soft_limit} / hard {server.coalescer.hard_limit})",
            file=sys.stderr,
            flush=True,
        )
        await server.serve_forever()
        if server.app is not app:
            server.app.close()  # hot reload swapped it; the caller closes `app`
        print("drained cleanly", file=sys.stderr, flush=True)

    asyncio.run(_amain())


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = args.datasets or None
    if args.name == "table2":
        from repro.experiments.table2 import render_table2, run_table2

        print(render_table2(run_table2(names, scale=args.scale, seed=args.seed)))
    elif args.name == "figure2":
        from repro.experiments.figure2 import render_figure2, run_figure2

        results = []
        for name in names or datasets.available():
            graph = datasets.generate(name, scale=args.scale, seed=args.seed)
            results.append(
                run_figure2(graph, dataset=name, seed=args.seed)
            )
        print(render_figure2(results))
    elif args.name == "table3":
        from repro.experiments.table3 import render_table3, run_table3

        print(
            render_table3(
                run_table3(
                    names,
                    scale=args.scale,
                    alpha=args.alpha,
                    seed=args.seed,
                    vicinity_floor=args.floor,
                )
            )
        )
    elif args.name == "memory":
        from repro.experiments.memory_table import render_memory_table, run_memory_table

        print(
            render_memory_table(
                run_memory_table(names, scale=args.scale, alpha=args.alpha, seed=args.seed)
            )
        )
    else:  # tradeoff
        from repro.experiments.tradeoff import render_tradeoff, run_tradeoff

        name = (names or ["livejournal"])[0]
        graph = datasets.generate(name, scale=args.scale, seed=args.seed)
        rows = run_tradeoff(graph, seed=args.seed, floors=(0.0, args.floor))
        print(render_tradeoff(rows, dataset=name))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "stats": _cmd_stats,
        "build": _cmd_build,
        "query": _cmd_query,
        "serve": _cmd_serve,
        "experiment": _cmd_experiment,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a consumer that closed early (e.g. head).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except OSError as exc:
        # Unreadable/missing input files and other I/O failures.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
