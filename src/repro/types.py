"""Shared type aliases used across the :mod:`repro` library.

Centralising these keeps signatures short and consistent: nodes are dense
integer identifiers in ``range(n)``, distances are ``int`` hop counts for
unweighted graphs and ``float`` for weighted ones, and paths are node
sequences from source to target inclusive.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

#: A node identifier.  Graphs in this library use dense integer ids.
Node = int

#: A distance: hop count (``int``) on unweighted graphs, ``float`` otherwise.
Distance = Union[int, float]

#: An undirected or directed edge as a pair of endpoints.
Edge = Tuple[Node, Node]

#: An edge with an explicit non-negative weight.
WeightedEdge = Tuple[Node, Node, float]

#: A path, listed from source to target inclusive.
Path = Sequence[Node]

#: Anything accepted as an edge list by the graph builders.
EdgeIterable = Iterable[Edge]

#: Anything accepted as a weighted edge list by the graph builders.
WeightedEdgeIterable = Iterable[WeightedEdge]
