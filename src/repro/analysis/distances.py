"""Distance-distribution estimation from sampled pairs (§1, §2.3).

The estimator consumes any distance provider — the oracle for speed,
BFS for ground truth — over the §2.3 pair workload, and reports the
histogram, moments, and the classic "degrees of separation" summary.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Protocol

import numpy as np

from repro.exceptions import QueryError
from repro.experiments.workloads import PairWorkload, sample_pair_workload
from repro.graph.csr import CSRGraph
from repro.utils.rng import RngLike


class DistanceProvider(Protocol):
    """Anything that answers ``distance(s, t) -> Distance | None``."""

    def distance(self, source: int, target: int): ...


@dataclass
class DistanceDistribution:
    """An estimated shortest-path-length distribution.

    Attributes:
        histogram: count per hop distance over the answered pairs.
        answered: pairs the provider answered.
        unanswered: pairs it could not answer (misses/disconnections).
    """

    histogram: Counter = field(default_factory=Counter)
    answered: int = 0
    unanswered: int = 0

    def record(self, distance: Optional[float]) -> None:
        """Fold one pair's outcome into the distribution."""
        if distance is None:
            self.unanswered += 1
        else:
            self.histogram[int(distance)] += 1
            self.answered += 1

    @property
    def coverage(self) -> float:
        """Fraction of pairs answered."""
        total = self.answered + self.unanswered
        return self.answered / total if total else 0.0

    @property
    def mean(self) -> float:
        """Mean distance over answered pairs."""
        if not self.answered:
            return 0.0
        return sum(h * c for h, c in self.histogram.items()) / self.answered

    @property
    def median(self) -> float:
        """Median distance over answered pairs."""
        if not self.answered:
            return 0.0
        midpoint = (self.answered + 1) / 2
        running = 0
        for hop in sorted(self.histogram):
            running += self.histogram[hop]
            if running >= midpoint:
                return float(hop)
        raise AssertionError("unreachable")

    @property
    def p99(self) -> float:
        """99th-percentile distance (the tail the paper's latency SLAs care about)."""
        if not self.answered:
            return 0.0
        threshold = 0.99 * self.answered
        running = 0
        for hop in sorted(self.histogram):
            running += self.histogram[hop]
            if running >= threshold:
                return float(hop)
        return float(max(self.histogram))

    def pmf(self) -> dict[int, float]:
        """Normalised probability mass per hop."""
        if not self.answered:
            return {}
        return {h: c / self.answered for h, c in sorted(self.histogram.items())}

    def total_variation(self, other: "DistanceDistribution") -> float:
        """TV distance between two estimates (accuracy metric in tests)."""
        hops = set(self.pmf()) | set(other.pmf())
        mine, theirs = self.pmf(), other.pmf()
        return 0.5 * sum(abs(mine.get(h, 0.0) - theirs.get(h, 0.0)) for h in hops)


def estimate_distance_distribution(
    provider: DistanceProvider,
    graph: CSRGraph,
    *,
    num_nodes: int = 64,
    rng: RngLike = None,
    workload: Optional[PairWorkload] = None,
) -> DistanceDistribution:
    """Estimate the pairwise distance distribution via the §2.3 protocol.

    Args:
        provider: distance source (oracle, baseline, APSP...).
        graph: the network (used only to sample the workload).
        num_nodes: workload sample size (all pairs are queried).
        rng: sampling seed.
        workload: pass an explicit workload to reuse across providers
            (e.g. when comparing an estimate against ground truth).

    Returns:
        The populated :class:`DistanceDistribution`.
    """
    if workload is None:
        workload = sample_pair_workload(graph, num_nodes, rng=rng)
    distribution = DistanceDistribution()
    for s, t in workload.pairs():
        distribution.record(provider.distance(s, t))
    return distribution


def mean_separation(
    provider: DistanceProvider,
    graph: CSRGraph,
    *,
    num_nodes: int = 64,
    rng: RngLike = None,
) -> float:
    """The "degrees of separation" number for a network.

    Raises:
        QueryError: if no sampled pair could be answered.
    """
    distribution = estimate_distance_distribution(
        provider, graph, num_nodes=num_nodes, rng=rng
    )
    if not distribution.answered:
        raise QueryError("no sampled pair could be answered")
    return distribution.mean
