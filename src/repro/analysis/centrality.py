"""Closeness-centrality estimation through the oracle.

Closeness — the inverse mean distance to everyone else — normally costs
one full BFS per node.  With the oracle, the mean distance from ``u``
is estimated from a target sample in microseconds per probe, turning a
whole-network centrality ranking into an online computation (the
"socially-sensitive search" flavour of §1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.distances import DistanceProvider
from repro.exceptions import QueryError
from repro.graph.csr import CSRGraph
from repro.utils.rng import RngLike, ensure_rng


def estimate_closeness(
    provider: DistanceProvider,
    graph: CSRGraph,
    node: int,
    *,
    num_targets: int = 64,
    rng: RngLike = None,
) -> float:
    """Estimate the closeness centrality of ``node``.

    ``closeness(u) = (answered - 1) / sum of distances`` over a uniform
    target sample (the standard sampled estimator, Eppstein-Wang style).
    Unanswered targets are skipped, which biases mildly toward the
    reachable component — the same convention NetworkX uses.

    Returns:
        The estimate, or 0.0 when nothing was reachable.
    """
    graph.check_node(node)
    generator = ensure_rng(rng)
    candidates = [v for v in generator.choice(graph.n, size=min(num_targets + 1, graph.n), replace=False).tolist() if v != node]
    total = 0.0
    answered = 0
    for target in candidates[:num_targets]:
        distance = provider.distance(node, int(target))
        if distance is not None and distance > 0:
            total += float(distance)
            answered += 1
    if answered == 0 or total == 0.0:
        return 0.0
    return answered / total


def rank_by_closeness(
    provider: DistanceProvider,
    graph: CSRGraph,
    nodes: Optional[Sequence[int]] = None,
    *,
    num_targets: int = 48,
    rng: RngLike = None,
) -> list[tuple[int, float]]:
    """Rank ``nodes`` (default: all) by estimated closeness, best first.

    Raises:
        QueryError: for an empty candidate list.
    """
    if nodes is None:
        nodes = range(graph.n)
    nodes = list(nodes)
    if not nodes:
        raise QueryError("no nodes to rank")
    generator = ensure_rng(rng)
    scored = [
        (node, estimate_closeness(provider, graph, node, num_targets=num_targets, rng=generator))
        for node in nodes
    ]
    scored.sort(key=lambda item: item[1], reverse=True)
    return scored
