"""Distance-based graph analysis on top of the oracle.

§1 motivates the oracle with research workloads: "to generate unbiased
samples for distance-based graph analysis experiments ... it is often
desirable to obtain the shortest distance between each pair of nodes in
a randomly sampled set".  This package turns that into a library
feature: distance distributions, separation statistics, and
closeness-centrality estimation, all driven by any object exposing
``distance(s, t)`` (the vicinity oracle, a baseline, or APSP).
"""

from repro.analysis.distances import (
    DistanceDistribution,
    estimate_distance_distribution,
    mean_separation,
)
from repro.analysis.centrality import estimate_closeness, rank_by_closeness

__all__ = [
    "DistanceDistribution",
    "estimate_distance_distribution",
    "mean_separation",
    "estimate_closeness",
    "rank_by_closeness",
]
