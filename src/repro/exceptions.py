"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause
while still distinguishing the precise failure mode when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for malformed graph construction or invalid node references."""


class NodeNotFoundError(GraphError):
    """Raised when a node identifier is outside ``range(n)`` for a graph."""

    def __init__(self, node: int, n: int) -> None:
        super().__init__(f"node {node} is not in the graph (valid range: 0..{n - 1})")
        self.node = node
        self.n = n


class EdgeError(GraphError):
    """Raised for invalid edge specifications (negative weights, bad endpoints)."""


class IndexBuildError(ReproError):
    """Raised when the offline phase cannot build a valid vicinity index."""


class QueryError(ReproError):
    """Raised for invalid online-phase queries (unknown nodes, bad options)."""


class UnreachableError(QueryError):
    """Raised when a path is requested between provably disconnected nodes."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"no path exists between {source} and {target}")
        self.source = source
        self.target = target


class WorkerFault(QueryError):
    """A shard worker failed at the transport level (crash, wedge, or a
    corrupt frame) — as opposed to a deterministic query error the worker
    reported itself.  Only these faults are eligible for retry/failover:
    re-dispatching a frame the worker *answered* with an error would just
    fail again."""

    def __init__(self, worker: int, reason: str) -> None:
        super().__init__(f"shard worker {worker} {reason}")
        self.worker = worker


class WorkerDied(WorkerFault):
    """Raised when a shard worker's process or stream is gone (EOF,
    broken pipe, dead ring peer)."""

    def __init__(self, worker: int, reason: str = "died") -> None:
        super().__init__(worker, reason)


class WorkerTimeout(WorkerFault):
    """Raised when a shard worker missed the configured sub-batch
    deadline — alive but wedged, from the coordinator's point of view."""

    def __init__(self, worker: int, deadline_s: float) -> None:
        super().__init__(
            worker, f"missed the {deadline_s:g}s sub-batch deadline"
        )
        self.deadline_s = deadline_s


class KernelError(ReproError):
    """Raised for invalid kernel-tier selection (e.g. forcing ``native``
    when the compiled extension is unavailable)."""


class SerializationError(ReproError):
    """Raised when persisted graphs or oracles cannot be read or written."""


class DatasetError(ReproError):
    """Raised for invalid synthetic-dataset parameters or unknown names."""
