"""Array-backed, read-only probe surface over a flattened index.

The dict-backed :class:`~repro.core.vicinity.Vicinity` records are ideal
for the single-machine oracle, but they cannot be shared across worker
*processes* without pickling the whole index into every worker.  The
flattened offset-indexed arrays that :mod:`repro.io.oracle_store`
persists have exactly the opposite property: they are a handful of
contiguous numpy buffers, so they can live in one
``multiprocessing.shared_memory`` segment, mapped zero-copy by every
shard worker.

This module provides the two halves of that story:

* :func:`flatten_index` — the CSR-of-dicts flattening (moved here from
  the persistence layer so serving backends and ``save_index`` share one
  implementation);
* :class:`FlatIndex` — probe helpers over the flattened arrays
  (vicinity membership/distance, boundary payloads, landmark tables,
  predecessor chains, the intersection kernel) whose results are
  *identical* — distance, method, witness, probes — to the dict-backed
  code paths.  Entries are re-sorted per node at construction time so
  every probe is a binary search instead of a hash lookup.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.paths import walk_parent_array
from repro.exceptions import QueryError

Distance = Union[int, float]

#: Array names that make up a flattened index (the shared-memory unit).
#: ``vic_*`` triplets are sorted by node id *within* each node's slice;
#: ``boundary_nodes`` keeps the stored scan order (Lemma 1 iteration
#: order, which the kernels' witness tie-breaking depends on) with
#: ``boundary_dists`` aligned to it.
FLAT_ARRAYS = (
    "vic_offsets",
    "vic_nodes",
    "vic_dists",
    "vic_preds",
    "member_offsets",
    "member_nodes",
    "boundary_offsets",
    "boundary_nodes",
    "boundary_dists",
    "table_dist",
    "table_parent",
    "landmark_ids",
    "landmark_row",
)


def flatten_index(index) -> dict[str, np.ndarray]:
    """Flatten a built :class:`~repro.core.index.VicinityIndex` to arrays.

    Returns the offset-indexed arrays in the persistence layout (dict
    iteration order preserved, nothing re-sorted): ``vic_offsets /
    vic_nodes / vic_dists / vic_preds``, ``member_offsets /
    member_nodes``, ``boundary_offsets / boundary_nodes``, ``radii``,
    ``landmarks``, ``landmark_scale``, ``table_dist / table_parent``.
    :func:`repro.io.oracle_store.save_index` persists exactly this dict;
    :meth:`FlatIndex.from_store_arrays` derives the probe-ready views.
    """
    graph = index.graph
    n = graph.n
    weighted = graph.is_weighted

    vic_offsets = np.zeros(n + 1, dtype=np.int64)
    member_offsets = np.zeros(n + 1, dtype=np.int64)
    boundary_offsets = np.zeros(n + 1, dtype=np.int64)
    nodes_parts: list[np.ndarray] = []
    dist_parts: list[np.ndarray] = []
    pred_parts: list[np.ndarray] = []
    member_parts: list[np.ndarray] = []
    boundary_parts: list[np.ndarray] = []
    radii = np.full(n, np.nan, dtype=np.float64)

    dist_dtype = np.float64 if weighted else np.int32
    for u in range(n):
        vic = index.vicinities[u]
        if vic.radius is not None:
            radii[u] = float(vic.radius)
        keys = np.fromiter(vic.dist.keys(), dtype=np.int64, count=len(vic.dist))
        values = np.fromiter(
            (vic.dist[k] for k in keys.tolist()), dtype=dist_dtype, count=keys.size
        )
        preds = np.fromiter(
            (vic.pred.get(k, -1) for k in keys.tolist()), dtype=np.int64, count=keys.size
        )
        nodes_parts.append(keys)
        dist_parts.append(values)
        pred_parts.append(preds)
        vic_offsets[u + 1] = vic_offsets[u] + keys.size
        members = np.fromiter(vic.members, dtype=np.int64, count=len(vic.members))
        member_parts.append(np.sort(members))
        member_offsets[u + 1] = member_offsets[u] + members.size
        boundary = np.asarray(vic.boundary, dtype=np.int64)
        boundary_parts.append(boundary)
        boundary_offsets[u + 1] = boundary_offsets[u] + boundary.size

    landmark_ids = index.landmarks.ids
    if index.tables:
        table_dist = np.stack([index.tables[l].dist for l in landmark_ids.tolist()])
        parents = [index.tables[l].parent for l in landmark_ids.tolist()]
        if any(p is None for p in parents):
            table_parent = np.zeros((0, 0), dtype=np.int32)
        else:
            table_parent = np.stack(parents)
    else:
        table_dist = np.zeros((0, 0), dtype=dist_dtype)
        table_parent = np.zeros((0, 0), dtype=np.int32)

    return {
        "landmarks": landmark_ids,
        "landmark_scale": np.asarray(index.landmarks.scale, dtype=np.float64),
        "vic_offsets": vic_offsets,
        "vic_nodes": _concat(nodes_parts, np.int64),
        "vic_dists": _concat(dist_parts, dist_dtype),
        "vic_preds": _concat(pred_parts, np.int64),
        "member_offsets": member_offsets,
        "member_nodes": _concat(member_parts, np.int64),
        "boundary_offsets": boundary_offsets,
        "boundary_nodes": _concat(boundary_parts, np.int64),
        "radii": radii,
        "table_dist": table_dist,
        "table_parent": table_parent,
    }


def _concat(parts: list[np.ndarray], dtype) -> np.ndarray:
    if not parts:
        return np.zeros(0, dtype=dtype)
    return np.concatenate(parts).astype(dtype, copy=False)


class FlatIndex:
    """Probe helpers over the flattened arrays of a built index.

    Construct with :meth:`from_index` (in-memory index) or
    :meth:`from_store_arrays` (the raw arrays of a saved index, e.g.
    from :func:`repro.io.oracle_store.load_flat_arrays`), or pass
    already-derived arrays — shared-memory views in a worker process —
    straight to ``__init__``.

    Every helper reproduces its dict-backed counterpart exactly:
    :meth:`vicinity_probe` matches ``other in vic.members`` +
    ``vic.dist[other]``; :meth:`intersect_payload` matches
    :func:`repro.core.intersect.scan_and_probe` (same scan order, same
    first-minimum witness, same probe count); :meth:`pred_chain` /
    :meth:`parent_chain` match :func:`repro.core.paths.walk_predecessors`
    / :func:`~repro.core.paths.walk_parent_array`.
    """

    def __init__(
        self,
        arrays: Mapping[str, np.ndarray],
        *,
        n: int,
        weighted: bool,
        store_paths: bool,
    ) -> None:
        missing = [name for name in FLAT_ARRAYS if name not in arrays]
        if missing:
            raise QueryError(f"flat index is missing arrays: {missing}")
        self.n = int(n)
        self.weighted = bool(weighted)
        self.store_paths = bool(store_paths)
        self.arrays: dict[str, np.ndarray] = {
            name: arrays[name] for name in FLAT_ARRAYS
        }
        for name in FLAT_ARRAYS:
            setattr(self, name, self.arrays[name])
        self.has_tables = self.table_dist.size > 0
        self.has_parents = self.table_parent.size > 0
        self._integral = self.vic_dists.dtype.kind == "i"

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_index(cls, index) -> "FlatIndex":
        """Flatten an in-memory :class:`VicinityIndex` into probe arrays."""
        return cls.from_store_arrays(
            flatten_index(index),
            n=index.n,
            weighted=index.graph.is_weighted,
            store_paths=index.config.store_paths,
        )

    @classmethod
    def from_store_arrays(
        cls,
        data: Mapping[str, np.ndarray],
        *,
        n: Optional[int] = None,
        weighted: Optional[bool] = None,
        store_paths: bool = True,
    ) -> "FlatIndex":
        """Derive probe-ready arrays from the persistence layout.

        Sorts each node's ``vic_*`` slice by node id (binary-search
        probes), precomputes per-boundary-node distances, and builds the
        landmark row map.  ``data`` uses the store's names (``landmarks``
        for the id array); unspecified ``n``/``weighted`` are inferred.
        """
        vic_offsets = np.ascontiguousarray(data["vic_offsets"], dtype=np.int64)
        if n is None:
            n = vic_offsets.size - 1
        vic_nodes = np.asarray(data["vic_nodes"], dtype=np.int64)
        vic_dists = np.asarray(data["vic_dists"])
        vic_preds = np.asarray(data["vic_preds"], dtype=np.int64)
        if weighted is None:
            weighted = vic_dists.dtype.kind == "f"

        counts = np.diff(vic_offsets)
        owner = np.repeat(np.arange(n, dtype=np.int64), counts)
        # Within-node sort: owner is already non-decreasing, so the
        # lexsort yields globally (owner, node)-sorted entries.
        order = np.lexsort((vic_nodes, owner))
        vic_nodes = np.ascontiguousarray(vic_nodes[order])
        vic_dists = np.ascontiguousarray(vic_dists[order])
        vic_preds = np.ascontiguousarray(vic_preds[order])

        boundary_offsets = np.ascontiguousarray(
            data["boundary_offsets"], dtype=np.int64
        )
        boundary_nodes = np.ascontiguousarray(data["boundary_nodes"], dtype=np.int64)
        # Every boundary node is a vicinity member; after the sort the
        # combined (owner, node) key is globally sorted, so one
        # searchsorted resolves every boundary distance at once.
        b_owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(boundary_offsets))
        scale = np.int64(max(n, 1))
        vic_key = owner * scale + vic_nodes
        pos = np.searchsorted(vic_key, b_owner * scale + boundary_nodes)
        boundary_dists = np.ascontiguousarray(vic_dists[pos])

        landmark_ids = np.ascontiguousarray(data["landmarks"], dtype=np.int64)
        landmark_row = np.full(n, -1, dtype=np.int64)
        landmark_row[landmark_ids] = np.arange(landmark_ids.size, dtype=np.int64)

        arrays = {
            "vic_offsets": vic_offsets,
            "vic_nodes": vic_nodes,
            "vic_dists": vic_dists,
            "vic_preds": vic_preds,
            "member_offsets": np.ascontiguousarray(
                data["member_offsets"], dtype=np.int64
            ),
            "member_nodes": np.ascontiguousarray(data["member_nodes"], dtype=np.int64),
            "boundary_offsets": boundary_offsets,
            "boundary_nodes": boundary_nodes,
            "boundary_dists": boundary_dists,
            "table_dist": np.ascontiguousarray(data["table_dist"]),
            "table_parent": np.ascontiguousarray(data["table_parent"]),
            "landmark_ids": landmark_ids,
            "landmark_row": landmark_row,
        }
        return cls(arrays, n=n, weighted=weighted, store_paths=store_paths)

    # ------------------------------------------------------------------
    # landmarks and tables
    # ------------------------------------------------------------------
    def is_landmark(self, u: int) -> bool:
        """Whether ``u`` is in the landmark set."""
        return bool(self.landmark_row[u] >= 0)

    def has_table(self, u: int) -> bool:
        """Whether ``u`` is a landmark with a stored full table."""
        return self.has_tables and self.landmark_row[u] >= 0

    def table_distance(self, landmark: int, v: int) -> Optional[Distance]:
        """The stored table distance ``d(landmark, v)`` (``None`` = unreachable)."""
        d = self.table_dist[int(self.landmark_row[landmark]), v]
        if d < 0 or d == np.inf:
            return None
        return int(d) if self._integral else float(d)

    def parent_chain(self, landmark: int, start: int) -> list[int]:
        """Walk the landmark's parent row; returns ``[landmark .. start]``."""
        if not self.has_parents:
            raise QueryError("index was built with store_paths=False")
        parent = self.table_parent[int(self.landmark_row[landmark])]
        return walk_parent_array(parent, int(start), landmark)

    # ------------------------------------------------------------------
    # vicinities
    # ------------------------------------------------------------------
    def _vic_slice(self, u: int) -> Tuple[int, int]:
        return int(self.vic_offsets[u]), int(self.vic_offsets[u + 1])

    def vicinity_size(self, u: int) -> int:
        """``|Gamma(u)|`` (membership count, not distance-table size)."""
        return int(self.member_offsets[u + 1] - self.member_offsets[u])

    def vicinity_probe(self, u: int, other: int) -> Tuple[bool, Optional[Distance]]:
        """``(is_member, distance)`` of ``other`` in ``Gamma(u)``."""
        lo, hi = int(self.member_offsets[u]), int(self.member_offsets[u + 1])
        members = self.member_nodes[lo:hi]
        i = int(np.searchsorted(members, other))
        if i >= members.size or members[i] != other:
            return False, None
        return True, self.vicinity_distance(u, other)

    def vicinity_distance(self, u: int, v: int) -> Distance:
        """``d(u, v)`` from ``u``'s stored table (``v`` must be stored)."""
        lo, hi = self._vic_slice(u)
        nodes = self.vic_nodes[lo:hi]
        i = int(np.searchsorted(nodes, v))
        if i >= nodes.size or nodes[i] != v:
            raise QueryError(f"node {v} is not in the stored table of {u}")
        d = self.vic_dists[lo + i]
        return int(d) if self._integral else float(d)

    def boundary_payload(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """The intersection wire payload: boundary ids and distances.

        Views into the shared arrays (scan order preserved), so building
        a payload allocates nothing.
        """
        lo, hi = int(self.boundary_offsets[u]), int(self.boundary_offsets[u + 1])
        return self.boundary_nodes[lo:hi], self.boundary_dists[lo:hi]

    def intersect_payload(
        self,
        scan_nodes: np.ndarray,
        scan_dists: np.ndarray,
        target: int,
    ) -> Tuple[Optional[Distance], Optional[int], int]:
        """Vectorised :func:`~repro.core.intersect.scan_and_probe`.

        Probes every scanned node against ``Gamma(target)`` and returns
        ``(best, witness, probes)`` — the same first-minimum witness and
        one-probe-per-scanned-node count as the scalar kernel.
        """
        probes = int(scan_nodes.size)
        if probes == 0:
            return None, None, probes
        mlo, mhi = int(self.member_offsets[target]), int(self.member_offsets[target + 1])
        members = self.member_nodes[mlo:mhi]
        if members.size == 0:
            return None, None, probes
        pos = np.searchsorted(members, scan_nodes)
        np.minimum(pos, members.size - 1, out=pos)
        hit = members[pos] == scan_nodes
        if not hit.any():
            return None, None, probes
        hit_nodes = scan_nodes[hit]
        lo, hi = self._vic_slice(target)
        nodes_t = self.vic_nodes[lo:hi]
        sums = scan_dists[hit] + self.vic_dists[lo:hi][np.searchsorted(nodes_t, hit_nodes)]
        # argmin returns the first minimum in scan order — the same
        # witness the scalar kernel's strict `candidate < best` keeps.
        k = int(np.argmin(sums))
        best = sums[k]
        return (int(best) if self._integral else float(best)), int(hit_nodes[k]), probes

    def pred_chain(self, u: int, start: int, root: int) -> list[int]:
        """Walk ``u``'s predecessor entries from ``start`` back to ``root``.

        Returns ``[root .. start]`` —
        :func:`~repro.core.paths.walk_predecessors` over flat arrays.
        """
        lo, hi = self._vic_slice(u)
        nodes = self.vic_nodes[lo:hi]
        preds = self.vic_preds[lo:hi]
        path = [int(start)]
        node = int(start)
        for _hop in range(nodes.size + 1):
            if node == root:
                path.reverse()
                return path
            i = int(np.searchsorted(nodes, node))
            if i >= nodes.size or nodes[i] != node or preds[i] < 0:
                raise QueryError(f"broken predecessor chain at node {node}")
            node = int(preds[i])
            path.append(node)
        raise QueryError(f"cyclic predecessor chain walking {start} -> {root}")
