"""Array-backed, read-only probe surface over a flattened index.

The dict-backed :class:`~repro.core.vicinity.Vicinity` records are ideal
for the single-machine oracle, but they cannot be shared across worker
*processes* without pickling the whole index into every worker.  The
flattened offset-indexed arrays that :mod:`repro.io.oracle_store`
persists have exactly the opposite property: they are a handful of
contiguous numpy buffers, so they can live in one
``multiprocessing.shared_memory`` segment, mapped zero-copy by every
shard worker.

This module provides the two halves of that story:

* :func:`flatten_index` — the CSR-of-dicts flattening (moved here from
  the persistence layer so serving backends and ``save_index`` share one
  implementation);
* :class:`FlatIndex` — probe helpers over the flattened arrays
  (vicinity membership/distance, boundary payloads, landmark tables,
  predecessor chains, the intersection kernel) whose results are
  *identical* — distance, method, witness, probes — to the dict-backed
  code paths.  Entries are re-sorted per node at construction time so
  every probe is a binary search instead of a hash lookup.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple, Union

import numpy as np

from repro.core import _native
from repro.core.paths import walk_parent_array
from repro.exceptions import KernelError, QueryError

Distance = Union[int, float]

#: Array names that make up a flattened index (the shared-memory unit).
#: ``vic_*`` triplets are sorted by node id *within* each node's slice;
#: ``boundary_nodes`` keeps the stored scan order (Lemma 1 iteration
#: order, which the kernels' witness tie-breaking depends on) with
#: ``boundary_dists`` aligned to it.
FLAT_ARRAYS = (
    "vic_offsets",
    "vic_nodes",
    "vic_dists",
    "vic_preds",
    "member_offsets",
    "member_nodes",
    "boundary_offsets",
    "boundary_nodes",
    "boundary_dists",
    "table_dist",
    "table_parent",
    "landmark_ids",
    "landmark_row",
)

#: Default mean-scan-size crossover between the fused all-pairs join
#: and the per-pair slice-local intersection kernels (see
#: :func:`calibrate_join_max_scan`); also the floor of the per-index
#: calibrated value.
JOIN_MAX_SCAN = 64


#: The ``log2(total boundary entries) - log2(median boundary)`` gap of
#: the index geometry :data:`JOIN_MAX_SCAN` was originally tuned on
#: (the PR 3 livejournal smoke profile).  The calibration below scales
#: the crossover inversely with this gap.
_JOIN_ANCHOR_GAP = 13.3


# ----------------------------------------------------------------------
# compact dtype policy
# ----------------------------------------------------------------------
def id_dtype_for(n: int) -> np.dtype:
    """Narrowest dtype holding every node id of an ``n``-node graph.

    The all-ones bit pattern is reserved as the missing-predecessor
    sentinel (it is what ``-1`` wraps to), so a dtype serves graphs up
    to its max value, not max + 1: ``uint16`` covers ``n <= 65535``
    (ids ``0..65534``), ``uint32`` covers every graph this codebase
    can index, and ``int64`` survives as the escape hatch.
    """
    if n <= np.iinfo(np.uint16).max:
        return np.dtype(np.uint16)
    if n <= np.iinfo(np.uint32).max:
        return np.dtype(np.uint32)
    return np.dtype(np.int64)


def offset_dtype_for(total: int) -> np.dtype:
    """Narrowest offset dtype for a CSR column of ``total`` entries."""
    if total <= np.iinfo(np.uint32).max:
        return np.dtype(np.uint32)
    return np.dtype(np.int64)


def pred_sentinel(dtype) -> int:
    """The missing-predecessor marker for an id dtype.

    For signed dtypes it is the dict path's ``-1``; for unsigned ones
    the all-ones max value — exactly what ``-1`` wraps to under
    numpy's array-level casts, so ``int64`` arrays carrying ``-1`` can
    be narrowed with one ``astype`` and no fix-up pass.
    """
    dtype = np.dtype(dtype)
    return int(np.iinfo(dtype).max) if dtype.kind == "u" else -1


def float32_exact(*arrays: np.ndarray) -> bool:
    """Whether every value survives a float32 round trip bit-exactly.

    ``inf`` (the weighted tables' unreachable marker) round-trips;
    weighted distances that are sums of dyadic weights do too, which
    is the common synthetic-benchmark case.  One lossy value anywhere
    keeps the whole store at float64 — exactness is the oracle's
    contract, not a tunable.
    """
    for arr in arrays:
        if arr.size == 0:
            continue
        wide = arr.astype(np.float64, copy=False)
        if not np.array_equal(wide.astype(np.float32).astype(np.float64), wide):
            return False
    return True


def _cast(arr: np.ndarray, dtype) -> np.ndarray:
    """Contiguous view/copy of ``arr`` as ``dtype`` (no-op when already so)."""
    if arr.dtype == dtype:
        return np.ascontiguousarray(arr)
    return np.ascontiguousarray(arr.astype(dtype, copy=False))


def compact_store_arrays(
    store: Mapping[str, np.ndarray], n: int, *, weighted: Optional[bool] = None
) -> dict[str, np.ndarray]:
    """Narrow a persistence-layout store to the compact dtype policy.

    * node ids, predecessors and table parents: :func:`id_dtype_for`
      (``-1`` markers wrap to the all-ones sentinel);
    * per-node offsets: :func:`offset_dtype_for` of each column total;
    * distances: ``int32`` unweighted; weighted stay ``float64`` unless
      every vicinity *and* table distance is float32-exact (the kernels
      sum hit subsets in float64 either way, so a float32 store changes
      no answer — pinned by the dtype-boundary parity suite).

    Idempotent and copy-free on an already-compact store; extra keys
    (``radii``, ``landmarks``, graph arrays) pass through untouched.
    """
    if weighted is None:
        weighted = store["vic_dists"].dtype.kind == "f"
    ids = id_dtype_for(n)
    out = dict(store)
    for name in ("vic_nodes", "member_nodes", "boundary_nodes"):
        out[name] = _cast(store[name], ids)
    out["vic_preds"] = _cast(store["vic_preds"], ids)
    out["table_parent"] = _cast(store["table_parent"], ids)
    for name in ("vic_offsets", "member_offsets", "boundary_offsets"):
        arr = np.asarray(store[name])
        total = int(arr[-1]) if arr.size else 0
        out[name] = _cast(arr, offset_dtype_for(total))
    if weighted:
        dist_dtype = (
            np.dtype(np.float32)
            if float32_exact(store["vic_dists"], store["table_dist"])
            else np.dtype(np.float64)
        )
    else:
        dist_dtype = np.dtype(np.int32)
    out["vic_dists"] = _cast(store["vic_dists"], dist_dtype)
    out["table_dist"] = _cast(store["table_dist"], dist_dtype)
    if "boundary_dists" in store:
        out["boundary_dists"] = _cast(store["boundary_dists"], dist_dtype)
    return out


def widen_store(store: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
    """The PR 4 int64 layout of a compact store (tests and size ratios).

    Ids/preds/offsets/parents back to ``int64``/``int32`` with ``-1``
    markers restored, distances to ``int32``/``float64`` — the exact
    arrays the pre-compaction code paths produced, so parity suites can
    pin the compact layout field-equal against its wide ancestor.
    """
    out = dict(store)
    for name in ("vic_nodes", "member_nodes", "boundary_nodes"):
        out[name] = store[name].astype(np.int64)
    for name in ("vic_offsets", "member_offsets", "boundary_offsets"):
        out[name] = store[name].astype(np.int64)
    out["vic_preds"] = _widen_marked(store["vic_preds"])
    out["table_parent"] = _widen_marked(store["table_parent"]).astype(
        np.int32, copy=False
    )
    if store["vic_dists"].dtype.kind == "f":
        out["vic_dists"] = store["vic_dists"].astype(np.float64)
        out["table_dist"] = store["table_dist"].astype(np.float64)
    else:
        out["vic_dists"] = store["vic_dists"].astype(np.int32)
        out["table_dist"] = store["table_dist"].astype(np.int32)
    if "boundary_dists" in store:
        out["boundary_dists"] = store["boundary_dists"].astype(
            out["vic_dists"].dtype
        )
    return out


def _widen_marked(arr: np.ndarray) -> np.ndarray:
    """Signed copy of an id array with the sentinel mapped back to -1."""
    wide = arr.astype(np.int64)
    if arr.dtype.kind == "u":
        wide[arr == pred_sentinel(arr.dtype)] = -1
    return wide


def store_nbytes(store: Mapping[str, np.ndarray]) -> int:
    """Total array bytes of a store dict (the resident-memory figure)."""
    return int(sum(np.asarray(a).nbytes for a in store.values()))


def calibrate_join_max_scan(boundary_counts: np.ndarray) -> int:
    """Pick the join/slice-local crossover from the boundary-size distribution.

    The fused intersection join of :meth:`FlatIndex.intersect_many`
    amortises per-pair Python overhead but pays a binary search over
    the *global* member key per scanned node — ``log2(total boundary
    entries)`` work — where the slice-local kernels pay a fixed
    per-pair overhead plus ``log2(median slice)`` per node.  Equating
    the two puts the crossover at ``constant x anchor_gap / gap`` with
    ``gap = log2(total) - log2(median)``: indices shaped like the one
    the constant was tuned on calibrate back to (about) the constant —
    which racing both directions confirmed is where the optimum sits,
    moving the threshold by 4x either way costs ~1.2x — while very
    large indices, whose global join search genuinely deepens relative
    to their slices, tighten log-wise.  ``bench_offline --smoke``
    races the calibrated value against the constant and asserts it is
    never slower on the serving workload.
    """
    populated = boundary_counts[boundary_counts > 0]
    if populated.size == 0:
        return JOIN_MAX_SCAN
    total = float(populated.sum())
    median = float(np.percentile(populated, 50))
    gap = np.log2(max(total, 2.0)) - np.log2(max(median, 2.0))
    calibrated = JOIN_MAX_SCAN * _JOIN_ANCHOR_GAP / max(gap, 1.0)
    return int(np.clip(calibrated, 8, 4 * JOIN_MAX_SCAN))


def _flatten_records(vicinities, n: int, dist_dtype) -> dict[str, np.ndarray]:
    """Flatten any sequence of vicinity-shaped records to offset arrays.

    A record needs ``radius``, ``dist``, ``pred``, ``members`` and
    ``boundary`` — both the undirected :class:`~repro.core.vicinity.Vicinity`
    and the per-orientation :class:`~repro.core.directed.DirectedVicinity`
    qualify, which is what lets the directed oracle share the flat
    query engine.  Distance-table slices and member lists are sorted by
    node id (binary-search probes); boundary lists keep their Lemma 1
    scan order, which the kernels' witness tie-breaking depends on.
    """
    # Sizes first, then one preallocation per column: growing via
    # parts-lists + concatenate doubles the memory traffic and pays
    # per-part overhead for every node.
    vic_offsets = np.zeros(n + 1, dtype=np.int64)
    member_offsets = np.zeros(n + 1, dtype=np.int64)
    boundary_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(
        np.fromiter((len(v.dist) for v in vicinities), np.int64, count=n),
        out=vic_offsets[1:],
    )
    np.cumsum(
        np.fromiter((len(v.members) for v in vicinities), np.int64, count=n),
        out=member_offsets[1:],
    )
    np.cumsum(
        np.fromiter((len(v.boundary) for v in vicinities), np.int64, count=n),
        out=boundary_offsets[1:],
    )
    # Entry columns are allocated at their compact widths up front, so
    # even this dict-extraction path never materialises an int64 copy
    # of the index; the per-slice int64 scratch below is one node's
    # worth.  Assigning an int64 slice that carries ``-1`` into an
    # unsigned column wraps it to the all-ones :func:`pred_sentinel`.
    ids = id_dtype_for(n)
    vic_nodes = np.empty(int(vic_offsets[-1]), dtype=ids)
    vic_dists = np.empty(int(vic_offsets[-1]), dtype=dist_dtype)
    vic_preds = np.empty(int(vic_offsets[-1]), dtype=ids)
    member_nodes = np.empty(int(member_offsets[-1]), dtype=ids)
    boundary_nodes = np.empty(int(boundary_offsets[-1]), dtype=ids)
    radii = np.full(n, np.nan, dtype=np.float64)

    for u in range(n):
        vic = vicinities[u]
        if vic.radius is not None:
            radii[u] = float(vic.radius)
        lo, hi = vic_offsets[u], vic_offsets[u + 1]
        keys, values, preds = _sorted_vic_slice(vic, dist_dtype)
        vic_nodes[lo:hi] = keys
        vic_dists[lo:hi] = values
        vic_preds[lo:hi] = preds
        mlo, mhi = member_offsets[u], member_offsets[u + 1]
        members = np.fromiter(
            vic.members, dtype=np.int64, count=int(mhi - mlo)
        )
        members.sort()
        member_nodes[mlo:mhi] = members
        boundary_nodes[boundary_offsets[u]:boundary_offsets[u + 1]] = vic.boundary

    return {
        "vic_offsets": vic_offsets,
        "vic_nodes": vic_nodes,
        "vic_dists": vic_dists,
        "vic_preds": vic_preds,
        "member_offsets": member_offsets,
        "member_nodes": member_nodes,
        "boundary_offsets": boundary_offsets,
        "boundary_nodes": boundary_nodes,
        "radii": radii,
    }


def flatten_index(index) -> dict[str, np.ndarray]:
    """Flatten a built :class:`~repro.core.index.VicinityIndex` to arrays.

    Returns the offset-indexed arrays in the persistence layout (per
    node, distance-table slices sorted by node id; boundary scan order
    preserved): ``vic_offsets / vic_nodes / vic_dists / vic_preds``,
    ``member_offsets / member_nodes``, ``boundary_offsets /
    boundary_nodes``, ``radii``, ``landmarks``, ``landmark_scale``,
    ``table_dist / table_parent``.
    :func:`repro.io.oracle_store.save_index` persists exactly this dict;
    :meth:`FlatIndex.from_store_arrays` derives the probe-ready views
    (accepting unsorted slices from legacy saved files too).

    A flat-built index (``representation="flat"``) already holds these
    arrays — they are returned as-is, so persistence never materialises
    the per-node records.  The dynamic oracle drops the stored copy on
    every mutation (``VicinityOracle.refresh_engine``), which routes
    the next flatten through the record extraction below.
    """
    stored = getattr(index, "_flat_store", None)
    if stored is not None:
        return stored
    graph = index.graph
    n = graph.n
    weighted = graph.is_weighted
    dist_dtype = np.float64 if weighted else np.int32
    parts = _flatten_records(index.vicinities, n, dist_dtype)

    landmark_ids = index.landmarks.ids
    if index.tables:
        table_dist = np.stack([index.tables[l].dist for l in landmark_ids.tolist()])
        parents = [index.tables[l].parent for l in landmark_ids.tolist()]
        if any(p is None for p in parents):
            table_parent = np.zeros((0, 0), dtype=np.int32)
        else:
            table_parent = np.stack(parents)
    else:
        table_dist = np.zeros((0, 0), dtype=dist_dtype)
        table_parent = np.zeros((0, 0), dtype=np.int32)

    return compact_store_arrays(
        {
            "landmarks": landmark_ids,
            "landmark_scale": np.asarray(index.landmarks.scale, dtype=np.float64),
            **parts,
            "table_dist": table_dist,
            "table_parent": table_parent,
        },
        n,
        weighted=weighted,
    )


def directed_side_store_arrays(
    vicinities, landmark_ids: np.ndarray, tables: dict, n: int
) -> dict[str, np.ndarray]:
    """One directed orientation's records as persistence-layout arrays.

    ``vicinities`` is the out- or in-vicinity list, ``tables`` the
    matching orientation's ``{landmark: (dist, parent)}`` map (forward
    tables for the out side, backward tables for the in side).  This is
    the layout :func:`repro.io.oracle_store.save_directed_oracle`
    persists per side, and what the flat-native directed builder
    (:func:`repro.core.parallel.build_directed_side_store`) emits
    without materialising the records at all.
    """
    ids = np.ascontiguousarray(landmark_ids, dtype=np.int64)
    data = _flatten_records(vicinities, n, np.int32)
    data["landmarks"] = ids
    if tables:
        data["table_dist"] = np.stack([tables[l][0] for l in ids.tolist()])
        data["table_parent"] = np.stack([tables[l][1] for l in ids.tolist()])
    else:
        data["table_dist"] = np.zeros((0, 0), dtype=np.int32)
        data["table_parent"] = np.zeros((0, 0), dtype=np.int32)
    return compact_store_arrays(data, n, weighted=False)


def directed_side_flat_index(data: Mapping[str, np.ndarray], n: int) -> "FlatIndex":
    """Probe surface over one directed side's store-layout arrays.

    A side loaded from the single-file container already carries the
    probe-ready extras (``boundary_dists``, ``landmark_row``) and skips
    every derivation pass — which is what keeps a memory-mapped
    directed oracle's startup O(1) in the entry count.
    """
    if "boundary_dists" in data and "landmark_row" in data:
        return FlatIndex.from_probe_arrays(
            data, n=n, weighted=False, store_paths=True
        )
    return FlatIndex.from_store_arrays(data, n=n, weighted=False, store_paths=True)


def flatten_directed_side(
    vicinities, landmark_ids: np.ndarray, tables: dict, n: int
) -> "FlatIndex":
    """Flatten one orientation of a directed oracle into a probe surface.

    The result is a regular :class:`FlatIndex`, so the directed oracle
    can delegate to the same :class:`~repro.core.engine.FlatQueryEngine`
    as the undirected one — just with distinct source/target sides.
    """
    return directed_side_flat_index(
        directed_side_store_arrays(vicinities, landmark_ids, tables, n), n
    )


def _sorted_vic_slice(vic, dist_dtype) -> tuple:
    """One vicinity's distance table as node-id-sorted aligned columns.

    The single extraction invariant shared by full flattening and the
    dynamic oracle's incremental refresh: keys() and values() of one
    dict are always aligned (no per-key lookups), predecessors come
    from :func:`_pred_column`, and the slice is sorted here — per node,
    cache-resident — so no whole-index sort is ever needed.
    """
    count = len(vic.dist)
    keys = np.fromiter(vic.dist.keys(), dtype=np.int64, count=count)
    values = np.fromiter(vic.dist.values(), dtype=dist_dtype, count=count)
    preds = _pred_column(vic.pred, keys)
    order = np.argsort(keys, kind="stable")
    return keys.take(order), values.take(order), preds.take(order)


def _pred_column(pred: dict, keys: np.ndarray) -> np.ndarray:
    """Predecessors aligned with ``keys``, without per-key lookups.

    Every ball builder inserts ``dist[v]`` and ``pred[v]`` together, so
    the two dicts normally iterate in the same order — verified with
    one vectorised compare, then ``values()`` is read straight through.
    The per-key fallback covers ``store_paths=False`` (empty ``pred``)
    and any builder that breaks the alignment.
    """
    if len(pred) == keys.size:
        pkeys = np.fromiter(pred.keys(), dtype=np.int64, count=keys.size)
        if np.array_equal(pkeys, keys):
            return np.fromiter(pred.values(), dtype=np.int64, count=keys.size)
    return np.fromiter(
        (pred.get(k, -1) for k in keys.tolist()), dtype=np.int64, count=keys.size
    )


class FlatIndex:
    """Probe helpers over the flattened arrays of a built index.

    Construct with :meth:`from_index` (in-memory index) or
    :meth:`from_store_arrays` (the raw arrays of a saved index, e.g.
    from :func:`repro.io.oracle_store.load_flat_arrays`), or pass
    already-derived arrays — shared-memory views in a worker process —
    straight to ``__init__``.

    Every helper reproduces its dict-backed counterpart exactly:
    :meth:`vicinity_probe` matches ``other in vic.members`` +
    ``vic.dist[other]``; :meth:`intersect_payload` matches
    :func:`repro.core.intersect.scan_and_probe` (same scan order, same
    first-minimum witness, same probe count); :meth:`pred_chain` /
    :meth:`parent_chain` match :func:`repro.core.paths.walk_predecessors`
    / :func:`~repro.core.paths.walk_parent_array`.
    """

    def __init__(
        self,
        arrays: Mapping[str, np.ndarray],
        *,
        n: int,
        weighted: bool,
        store_paths: bool,
    ) -> None:
        missing = [name for name in FLAT_ARRAYS if name not in arrays]
        if missing:
            raise QueryError(f"flat index is missing arrays: {missing}")
        self.n = int(n)
        self.weighted = bool(weighted)
        self.store_paths = bool(store_paths)
        self.arrays: dict[str, np.ndarray] = {
            name: arrays[name] for name in FLAT_ARRAYS
        }
        for name in FLAT_ARRAYS:
            setattr(self, name, self.arrays[name])
        self.has_tables = self.table_dist.size > 0
        self.has_parents = self.table_parent.size > 0
        self._integral = self.vic_dists.dtype.kind == "i"
        #: Whether distances are integral (unweighted/int stores) — the
        #: wire decoder needs it to restore exact Python result types.
        self.integral = self._integral
        #: The store's node-id width (uint16/uint32 compact, int64
        #: legacy).  Predecessor columns share it, with missing entries
        #: at :func:`pred_sentinel` — any value outside ``[0, n)``.
        self.id_dtype = self.vic_nodes.dtype
        self.member_counts = np.diff(self.member_offsets)
        self.boundary_counts = np.diff(self.boundary_offsets)
        #: Per-index join/slice-local crossover, calibrated from the
        #: measured boundary-size distribution at flatten time.
        self.join_max_scan = calibrate_join_max_scan(self.boundary_counts)
        self._key_scale = np.int64(max(self.n, 1))
        # The global (owner, node) keys that make one searchsorted
        # answer a whole batch of probes are built lazily: only the
        # single-machine fused batch lanes need them — shard workers
        # probe per-slice and skip the O(entries) construction.
        self._member_key_cache: Optional[np.ndarray] = None
        self._vic_key_cache: Optional[np.ndarray] = None
        self._member_dists: Optional[np.ndarray] = None
        # Kernel tier: resolved lazily on first kernel call (so env vars
        # and explicit overrides applied before first use win); the
        # requested choice is remembered so dynamic repair can carry it
        # onto the replacement index.
        self._kernels: Optional[str] = None
        self._kernel_choice: Optional[str] = None
        self._native = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_index(cls, index) -> "FlatIndex":
        """Flatten an in-memory :class:`VicinityIndex` into probe arrays.

        The result is cached on the index object: flattening is a full
        pass over every per-node dict, and one built index is routinely
        wrapped by many oracles (serving stacks, reference baselines,
        shard backends), which must not each pay it again.  Mutating
        consumers (the dynamic oracle) keep the cache fresh through
        :meth:`refreshed` via ``VicinityOracle.refresh_engine``.
        """
        cached = getattr(index, "_flat_index", None)
        if cached is not None:
            return cached
        flat = cls.from_store_arrays(
            flatten_index(index),
            n=index.n,
            weighted=index.graph.is_weighted,
            store_paths=index.config.store_paths,
        )
        index._flat_index = flat
        return flat

    @classmethod
    def from_probe_arrays(
        cls,
        store: Mapping[str, np.ndarray],
        *,
        n: int,
        weighted: bool,
        store_paths: bool = True,
    ) -> "FlatIndex":
        """Wrap a probe-ready store (the single-file layout) directly.

        The store must already be compact, per-slice sorted, and carry
        ``boundary_dists`` + ``landmark_row`` — which is exactly what
        :mod:`repro.io.oracle_store` persists — so construction does no
        O(entries) work at all: ideal for memory-mapped views, where a
        derivation pass would fault in every page the mapping was
        supposed to defer.
        """
        arrays = {name: store[name] for name in FLAT_ARRAYS if name in store}
        arrays["landmark_ids"] = np.asarray(store["landmarks"])
        return cls(arrays, n=n, weighted=weighted, store_paths=store_paths)

    @classmethod
    def from_store_arrays(
        cls,
        data: Mapping[str, np.ndarray],
        *,
        n: Optional[int] = None,
        weighted: Optional[bool] = None,
        store_paths: bool = True,
    ) -> "FlatIndex":
        """Derive probe-ready arrays from the persistence layout.

        Narrows every array to the compact dtype policy (a no-op for
        stores that are already compact — notably memory-mapped views,
        which must stay zero-copy), sorts each node's ``vic_*`` slice
        by node id (binary-search probes), precomputes per-boundary-node
        distances, and builds the landmark row map.  A store that
        already carries ``boundary_dists`` / ``landmark_row`` (the
        probe-ready single-file layout) skips those derivations.
        ``data`` uses the store's names (``landmarks`` for the id
        array); unspecified ``n``/``weighted`` are inferred.
        """
        if n is None:
            n = int(np.asarray(data["vic_offsets"]).size - 1)
        if weighted is None:
            weighted = np.asarray(data["vic_dists"]).dtype.kind == "f"
        store = compact_store_arrays(data, n, weighted=weighted)
        vic_offsets = store["vic_offsets"]
        vic_nodes = store["vic_nodes"]
        vic_dists = store["vic_dists"]
        vic_preds = store["vic_preds"]

        counts = np.diff(vic_offsets)
        owner = np.repeat(np.arange(n, dtype=np.int64), counts)
        # Within-node sort via one combined (owner, node) key: owner is
        # already non-decreasing, so sorting the key yields globally
        # (owner, node)-sorted entries.  :func:`_flatten_records` emits
        # slices already sorted, so the argsort only runs for legacy
        # saved files whose slices keep dict iteration order.
        scale = np.int64(max(n, 1))
        vic_key = owner * scale + vic_nodes
        if vic_key.size and not np.all(vic_key[1:] >= vic_key[:-1]):
            order = np.argsort(vic_key, kind="stable")
            vic_key = vic_key[order]
            vic_nodes = np.ascontiguousarray(vic_nodes[order])
            vic_dists = np.ascontiguousarray(vic_dists[order])
            vic_preds = np.ascontiguousarray(vic_preds[order])

        boundary_offsets = store["boundary_offsets"]
        boundary_nodes = store["boundary_nodes"]
        if "boundary_dists" in store:
            boundary_dists = store["boundary_dists"]
        else:
            # Every boundary node is a vicinity member; the combined key
            # is now globally sorted, so one searchsorted resolves every
            # boundary distance at once.
            b_owner = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(boundary_offsets)
            )
            pos = np.searchsorted(vic_key, b_owner * scale + boundary_nodes)
            boundary_dists = np.ascontiguousarray(vic_dists[pos])

        landmark_ids = np.ascontiguousarray(data["landmarks"], dtype=np.int64)
        if "landmark_row" in data:
            landmark_row = np.ascontiguousarray(data["landmark_row"])
        else:
            landmark_row = np.full(n, -1, dtype=np.int32)
            landmark_row[landmark_ids] = np.arange(
                landmark_ids.size, dtype=np.int32
            )

        arrays = {
            "vic_offsets": vic_offsets,
            "vic_nodes": vic_nodes,
            "vic_dists": vic_dists,
            "vic_preds": vic_preds,
            "member_offsets": store["member_offsets"],
            "member_nodes": store["member_nodes"],
            "boundary_offsets": boundary_offsets,
            "boundary_nodes": boundary_nodes,
            "boundary_dists": boundary_dists,
            "table_dist": store["table_dist"],
            "table_parent": store["table_parent"],
            "landmark_ids": landmark_ids,
            "landmark_row": landmark_row,
        }
        return cls(arrays, n=n, weighted=weighted, store_paths=store_paths)

    # ------------------------------------------------------------------
    # landmarks and tables
    # ------------------------------------------------------------------
    def is_landmark(self, u: int) -> bool:
        """Whether ``u`` is in the landmark set."""
        return bool(self.landmark_row[u] >= 0)

    def has_table(self, u: int) -> bool:
        """Whether ``u`` is a landmark with a stored full table."""
        return self.has_tables and self.landmark_row[u] >= 0

    def table_distance(self, landmark: int, v: int) -> Optional[Distance]:
        """The stored table distance ``d(landmark, v)`` (``None`` = unreachable)."""
        d = self.table_dist[int(self.landmark_row[landmark]), v]
        if d < 0 or d == np.inf:
            return None
        return int(d) if self._integral else float(d)

    def parent_chain(self, landmark: int, start: int) -> list[int]:
        """Walk the landmark's parent row; returns ``[landmark .. start]``."""
        if not self.has_parents:
            raise QueryError("index was built with store_paths=False")
        parent = self.table_parent[int(self.landmark_row[landmark])]
        return walk_parent_array(parent, int(start), landmark)

    # ------------------------------------------------------------------
    # vicinities
    # ------------------------------------------------------------------
    def _vic_slice(self, u: int) -> Tuple[int, int]:
        return int(self.vic_offsets[u]), int(self.vic_offsets[u + 1])

    def vicinity_size(self, u: int) -> int:
        """``|Gamma(u)|`` (membership count, not distance-table size)."""
        return int(self.member_offsets[u + 1] - self.member_offsets[u])

    def vicinity_probe(self, u: int, other: int) -> Tuple[bool, Optional[Distance]]:
        """``(is_member, distance)`` of ``other`` in ``Gamma(u)``."""
        if self._integral:
            # Unweighted: the stored distance table is exactly the
            # member set, so one binary search answers both questions.
            lo, hi = self._vic_slice(u)
            nodes = self.vic_nodes[lo:hi]
            i = nodes.searchsorted(other)
            if i >= nodes.size or nodes[i] != other:
                return False, None
            return True, int(self.vic_dists[lo + i])
        lo, hi = int(self.member_offsets[u]), int(self.member_offsets[u + 1])
        members = self.member_nodes[lo:hi]
        i = int(np.searchsorted(members, other))
        if i >= members.size or members[i] != other:
            return False, None
        return True, self.vicinity_distance(u, other)

    def vicinity_distance(self, u: int, v: int) -> Distance:
        """``d(u, v)`` from ``u``'s stored table (``v`` must be stored)."""
        lo, hi = self._vic_slice(u)
        nodes = self.vic_nodes[lo:hi]
        i = int(np.searchsorted(nodes, v))
        if i >= nodes.size or nodes[i] != v:
            raise QueryError(f"node {v} is not in the stored table of {u}")
        d = self.vic_dists[lo + i]
        return int(d) if self._integral else float(d)

    def boundary_payload(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """The intersection wire payload: boundary ids and distances.

        Views into the shared arrays (scan order preserved), so building
        a payload allocates nothing.
        """
        lo, hi = int(self.boundary_offsets[u]), int(self.boundary_offsets[u + 1])
        return self.boundary_nodes[lo:hi], self.boundary_dists[lo:hi]

    def member_payload(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """Full-vicinity scan payload: member ids and their distances.

        The iteration set of the unoptimised ``full-*`` kernels
        (ablation A1).  Members are scanned in sorted-id order — the
        flat layout has no dict iteration order to preserve — so a
        ``full-*`` witness can differ from the dict path's on distance
        ties (the distance itself cannot).
        """
        lo, hi = int(self.member_offsets[u]), int(self.member_offsets[u + 1])
        nodes = self.member_nodes[lo:hi]
        vlo, vhi = self._vic_slice(u)
        dists = self.vic_dists[vlo:vhi][
            np.searchsorted(self.vic_nodes[vlo:vhi], nodes)
        ]
        return nodes, dists

    # ------------------------------------------------------------------
    # kernel tier
    # ------------------------------------------------------------------
    @property
    def kernels(self) -> str:
        """The active kernel tier: ``"numpy"`` or ``"native"``."""
        if self._kernels is None:
            self.set_kernels(None)
        return self._kernels

    def set_kernels(self, choice: Optional[str]) -> str:
        """Select the kernel tier and return the resolved name.

        ``"numpy"`` and ``"native"`` force a tier (forcing ``native``
        raises :class:`~repro.exceptions.KernelError` when the compiled
        extension is missing or this index's layout is unsupported);
        ``None``/``"auto"`` defer to ``REPRO_KERNELS`` and otherwise
        pick ``native`` exactly when it is usable.
        """
        tier = _native.resolve_tier(choice)
        self._kernel_choice = choice if choice not in (None, "auto") else None
        if tier == "numpy":
            self._native = None
            self._kernels = "numpy"
            return self._kernels
        kernels, reason = _native.native_kernels(self)
        if kernels is None:
            if tier == "native":
                raise KernelError(
                    f"native kernels requested but unavailable: {reason}"
                )
            self._native = None
            self._kernels = "numpy"
        else:
            self._native = kernels
            self._kernels = "native"
        return self._kernels

    def _native_tier(self):
        """The resolved native-kernel wrapper, or ``None`` (numpy tier)."""
        if self._kernels is None:
            self.set_kernels(None)
        return self._native

    @property
    def _member_key(self) -> np.ndarray:
        """Global (owner, node) member key, sorted; built on first use."""
        if self._member_key_cache is None:
            owners = np.repeat(
                np.arange(self.n, dtype=np.int64), self.member_counts
            )
            self._member_key_cache = owners * self._key_scale + self.member_nodes
        return self._member_key_cache

    @property
    def _vic_key(self) -> np.ndarray:
        """Global (owner, node) distance-table key, sorted; lazy."""
        if self._vic_key_cache is None:
            owners = np.repeat(
                np.arange(self.n, dtype=np.int64), np.diff(self.vic_offsets)
            )
            self._vic_key_cache = owners * self._key_scale + self.vic_nodes
        return self._vic_key_cache

    @property
    def member_dists(self) -> np.ndarray:
        """Distances aligned with ``member_nodes`` (lazy, full-kernel scans)."""
        if self._member_dists is None:
            if self._member_key.size:
                self._member_dists = self.vic_dists[
                    np.searchsorted(self._vic_key, self._member_key)
                ]
            else:
                self._member_dists = np.zeros(0, dtype=self.vic_dists.dtype)
        return self._member_dists

    def member_probe_many(
        self, owners: np.ndarray, others: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`vicinity_probe` over aligned pair arrays.

        One searchsorted over the global (owner, node) key answers
        ``others[i] in Gamma(owners[i])`` for every ``i`` at once; a
        second gathers the stored distances for the hits.  Returns
        ``(hit_mask, distances)`` with distances meaningful only where
        the mask is true.
        """
        native = self._native_tier()
        if native is not None:
            return native.member_probe_many(owners, others)
        key = owners * self._key_scale + others
        dists = np.zeros(key.size, dtype=self.vic_dists.dtype)
        if self._member_key.size == 0 or key.size == 0:
            return np.zeros(key.size, dtype=bool), dists
        pos = np.searchsorted(self._member_key, key)
        np.minimum(pos, self._member_key.size - 1, out=pos)
        hit = self._member_key[pos] == key
        if hit.any():
            vpos = np.searchsorted(self._vic_key, key[hit])
            dists[hit] = self.vic_dists[vpos]
        return hit, dists

    def table_lookup_many(
        self, endpoints: np.ndarray, others: np.ndarray
    ) -> np.ndarray:
        """Raw landmark-table rows for aligned ``(endpoint, node)`` pairs.

        Every ``endpoints[i]`` must satisfy :meth:`has_table`; returns
        the stored values as ``float64`` (negative or ``inf`` marks
        unreachable, exactly as :meth:`table_distance` interprets
        them) so both kernel tiers hand callers one numeric type.
        """
        native = self._native_tier()
        if native is not None:
            return native.table_lookup_many(endpoints, others)
        rows = self.landmark_row[endpoints]
        return self.table_dist[rows, others].astype(np.float64, copy=False)

    def intersect_many(
        self,
        scan_offsets: np.ndarray,
        scan_nodes: np.ndarray,
        scan_dists: np.ndarray,
        scan_owner: np.ndarray,
        probe_owner: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The fused batch intersection kernel.

        For each pair ``i``, scans ``scan_owner[i]``'s slice of the
        given offset-indexed scan arrays against ``Gamma(probe_owner[i])``
        *on this index* — one flat join over the whole lane instead of
        one kernel call per pair.  Per pair the outcome is identical to
        :meth:`intersect_payload`: same minimal sum, same first-minimum
        witness in scan order, one probe per scanned node.

        Returns ``(best, witness, probes)`` arrays; ``best`` is
        ``float64`` with ``inf`` marking no intersection and ``witness``
        ``-1`` there.
        """
        native = self._native_tier()
        if native is not None:
            res = native.intersect_many(
                scan_offsets, scan_nodes, scan_dists, scan_owner, probe_owner
            )
            if res is not _native.UNSUPPORTED:
                return res
        lanes = scan_owner.size
        lo = scan_offsets[scan_owner]
        sizes = (scan_offsets[scan_owner + 1] - lo).astype(np.int64)
        best = np.full(lanes, np.inf, dtype=np.float64)
        witness = np.full(lanes, -1, dtype=np.int64)
        total = int(sizes.sum())
        if total == 0 or self._member_key.size == 0:
            return best, witness, sizes
        # CSR gather: element j of the concatenation belongs to pair
        # seg[j] and sits at global index gidx[j] of the scan arrays
        # (ascending within each pair, preserving scan order).
        seg = np.repeat(np.arange(lanes, dtype=np.int64), sizes)
        prefix = np.cumsum(sizes) - sizes
        gidx = np.repeat(lo - prefix, sizes) + np.arange(total, dtype=np.int64)
        nodes = scan_nodes[gidx]
        key = probe_owner[seg] * self._key_scale + nodes
        pos = np.searchsorted(self._member_key, key)
        np.minimum(pos, self._member_key.size - 1, out=pos)
        hit = self._member_key[pos] == key
        if not hit.any():
            return best, witness, sizes
        hseg = seg[hit]
        sums = (
            scan_dists[gidx[hit]].astype(np.float64)
            + self.vic_dists[np.searchsorted(self._vic_key, key[hit])]
        )
        np.minimum.at(best, hseg, sums)
        # First minimum in scan order == the scalar kernel's witness
        # (strict `candidate < best` keeps the earliest minimum).
        is_min = sums == best[hseg]
        first = np.full(lanes, total, dtype=np.int64)
        np.minimum.at(first, hseg[is_min], np.flatnonzero(hit)[is_min])
        found = first < total
        witness[found] = nodes[first[found]]
        return best, witness, sizes

    def intersect_payload(
        self,
        scan_nodes: np.ndarray,
        scan_dists: np.ndarray,
        target: int,
    ) -> Tuple[Optional[Distance], Optional[int], int]:
        """Vectorised :func:`~repro.core.intersect.scan_and_probe`.

        Probes every scanned node against ``Gamma(target)`` and returns
        ``(best, witness, probes)`` — the same first-minimum witness and
        one-probe-per-scanned-node count as the scalar kernel.
        """
        native = self._native_tier()
        if native is not None:
            res = native.intersect_payload(scan_nodes, scan_dists, target)
            if res is not _native.UNSUPPORTED:
                return res
        probes = int(scan_nodes.size)
        if probes == 0:
            return None, None, probes
        if self._integral:
            # Unweighted fast path: the distance table IS the member
            # set, so one slice-local search settles membership and
            # distance together (cache-resident, unlike a global-key
            # join) and one argmin over the hits elects the witness.
            lo, hi = self._vic_slice(target)
            nodes_t = self.vic_nodes[lo:hi]
            if nodes_t.size == 0:
                return None, None, probes
            pos = nodes_t.searchsorted(scan_nodes)
            np.minimum(pos, nodes_t.size - 1, out=pos)
            hit_idx = np.flatnonzero(nodes_t.take(pos) == scan_nodes)
            if hit_idx.size == 0:
                return None, None, probes
            sums = self.vic_dists[lo:hi].take(pos.take(hit_idx)) + scan_dists.take(
                hit_idx
            )
            # argmin returns the first minimum in scan order — the same
            # witness the scalar kernel's strict `candidate < best` keeps.
            k = int(np.argmin(sums))
            return int(sums[k]), int(scan_nodes[hit_idx[k]]), probes
        mlo, mhi = int(self.member_offsets[target]), int(self.member_offsets[target + 1])
        members = self.member_nodes[mlo:mhi]
        if members.size == 0:
            return None, None, probes
        pos = np.searchsorted(members, scan_nodes)
        np.minimum(pos, members.size - 1, out=pos)
        hit = members[pos] == scan_nodes
        if not hit.any():
            return None, None, probes
        hit_nodes = scan_nodes[hit]
        lo, hi = self._vic_slice(target)
        nodes_t = self.vic_nodes[lo:hi]
        # Hit subsets are tiny; summing them in float64 keeps a
        # float32-stored index's answers bit-identical to the float64
        # layout (the stored values are float32-exact by construction,
        # so only the *sum's* rounding could ever diverge).
        sums = scan_dists[hit].astype(np.float64) + self.vic_dists[lo:hi][
            np.searchsorted(nodes_t, hit_nodes)
        ].astype(np.float64)
        k = int(np.argmin(sums))
        best = sums[k]
        return (int(best) if self._integral else float(best)), int(hit_nodes[k]), probes

    def pred_chain(self, u: int, start: int, root: int) -> list[int]:
        """Walk ``u``'s predecessor entries from ``start`` back to ``root``.

        Returns ``[root .. start]`` —
        :func:`~repro.core.paths.walk_predecessors` over flat arrays.
        """
        lo, hi = self._vic_slice(u)
        nodes = self.vic_nodes[lo:hi]
        preds = self.vic_preds[lo:hi]
        path = [int(start)]
        node = int(start)
        for _hop in range(nodes.size + 1):
            if node == root:
                path.reverse()
                return path
            i = int(np.searchsorted(nodes, node))
            if i >= nodes.size or nodes[i] != node:
                raise QueryError(f"broken predecessor chain at node {node}")
            # Missing predecessors sit outside [0, n): -1 in legacy
            # signed stores, the wrapped all-ones sentinel in compact
            # unsigned ones — one range check covers both.
            node = int(preds[i])
            if not 0 <= node < self.n:
                raise QueryError(f"broken predecessor chain at node {path[-1]}")
            path.append(node)
        raise QueryError(f"cyclic predecessor chain walking {start} -> {root}")

    # ------------------------------------------------------------------
    # incremental refresh (dynamic repair)
    # ------------------------------------------------------------------
    def refreshed(self, index, nodes) -> "FlatIndex":
        """Return a new index with only ``nodes``' slices re-flattened.

        The dynamic oracle repairs a handful of vicinities per edge
        insertion; re-extracting every per-node dict would dominate the
        repair cost, so this splices fresh (sorted) slices for exactly
        the touched nodes into the existing arrays.  Landmark tables are
        re-stacked wholesale — table repair mutates the dict-side arrays
        in place and their shapes never change, so that is one cheap
        copy.  The result equals ``FlatIndex.from_index(index)``
        (pinned by a test).
        """
        touched = sorted({int(u) for u in nodes if 0 <= int(u) < self.n})
        dist_dtype = self.vic_dists.dtype
        ids = self.id_dtype
        vic_parts: dict[int, tuple] = {}
        member_parts: dict[int, np.ndarray] = {}
        boundary_parts: dict[int, tuple] = {}
        for u in touched:
            vic = index.vicinities[u]
            keys, values, preds = _sorted_vic_slice(vic, dist_dtype)
            # Replacement slices are narrowed to the store's compact
            # widths here (the -1 markers wrap to the sentinel), so a
            # repaired index keeps the dtypes a fresh flatten would
            # choose — pinned by the refreshed-equals-from_index test.
            vic_parts[u] = (keys.astype(ids), values, preds.astype(ids))
            member_parts[u] = np.sort(
                np.fromiter(vic.members, dtype=np.int64, count=len(vic.members))
            ).astype(ids)
            boundary = np.asarray(vic.boundary, dtype=np.int64)
            boundary_parts[u] = (
                boundary.astype(ids),
                values.take(np.searchsorted(keys, boundary)),
            )

        vic_offsets, (vic_nodes, vic_dists, vic_preds) = _splice(
            self.vic_offsets,
            (self.vic_nodes, self.vic_dists, self.vic_preds),
            vic_parts,
        )
        member_offsets, (member_nodes,) = _splice(
            self.member_offsets, (self.member_nodes,),
            {u: (part,) for u, part in member_parts.items()},
        )
        boundary_offsets, (boundary_nodes, boundary_dists) = _splice(
            self.boundary_offsets,
            (self.boundary_nodes, self.boundary_dists),
            boundary_parts,
        )
        # _splice accumulates offsets in int64; settle them back to the
        # width a fresh flatten would choose for the new totals.
        vic_offsets = vic_offsets.astype(
            offset_dtype_for(int(vic_offsets[-1])), copy=False
        )
        member_offsets = member_offsets.astype(
            offset_dtype_for(int(member_offsets[-1])), copy=False
        )
        boundary_offsets = boundary_offsets.astype(
            offset_dtype_for(int(boundary_offsets[-1])), copy=False
        )

        if index.tables:
            landmark_list = self.landmark_ids.tolist()
            table_dist = np.stack(
                [index.tables[l].dist for l in landmark_list]
            ).astype(self.table_dist.dtype, copy=False)
            parents = [index.tables[l].parent for l in landmark_list]
            if any(p is None for p in parents):
                table_parent = np.zeros((0, 0), dtype=ids)
            else:
                # astype wraps any -1 markers to the unsigned sentinel.
                table_parent = np.stack(parents).astype(
                    self.table_parent.dtype, copy=False
                )
        else:
            table_dist, table_parent = self.table_dist, self.table_parent

        arrays = {
            "vic_offsets": vic_offsets,
            "vic_nodes": vic_nodes,
            "vic_dists": vic_dists,
            "vic_preds": vic_preds,
            "member_offsets": member_offsets,
            "member_nodes": member_nodes,
            "boundary_offsets": boundary_offsets,
            "boundary_nodes": boundary_nodes,
            "boundary_dists": boundary_dists,
            "table_dist": table_dist,
            "table_parent": table_parent,
            "landmark_ids": self.landmark_ids,
            "landmark_row": self.landmark_row,
        }
        fresh = FlatIndex(
            arrays, n=self.n, weighted=self.weighted, store_paths=self.store_paths
        )
        # An explicitly forced tier survives dynamic repair; auto
        # re-resolves lazily against the replacement arrays.
        if self._kernel_choice is not None:
            fresh.set_kernels(self._kernel_choice)
        return fresh


def _splice(
    offsets: np.ndarray,
    arrays: tuple,
    replacements: dict[int, tuple],
) -> tuple:
    """Replace per-node slices of offset-indexed arrays.

    ``replacements`` maps node id to one replacement array per entry of
    ``arrays``.  Untouched runs are copied in whole blocks, so the cost
    is one pass over the data regardless of how many nodes changed.
    Returns ``(new_offsets, new_arrays)``.
    """
    n = offsets.size - 1
    counts = np.diff(offsets).astype(np.int64)
    for u, parts in replacements.items():
        counts[u] = parts[0].size
    new_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=new_offsets[1:])
    outs = [np.empty(int(new_offsets[-1]), dtype=a.dtype) for a in arrays]
    prev = 0  # old-array read position
    write = 0
    for u in sorted(replacements):
        old_lo, old_hi = int(offsets[u]), int(offsets[u + 1])
        run = old_lo - prev
        for out, src in zip(outs, arrays):
            out[write:write + run] = src[prev:old_lo]
        write += run
        for out, part in zip(outs, replacements[u]):
            out[write:write + part.size] = part
        write += replacements[u][0].size
        prev = old_hi
    tail = offsets[-1] - prev
    for out, src in zip(outs, arrays):
        out[write:write + tail] = src[prev:]
    return new_offsets, tuple(outs)
