"""Configuration for the offline and online phases.

One dataclass carries every knob so that an oracle build is fully
described by ``(graph, config)`` — which is also what the persistence
layer serialises and what the experiment harness sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.exceptions import IndexBuildError

#: Intersection kernel choices (see :mod:`repro.core.intersect`).
KERNELS = ("boundary-smaller", "boundary-source", "boundary-target", "full-smaller", "full-source")

#: Fallback strategies when vicinities do not intersect (footnote 1).
FALLBACKS = ("none", "bidirectional")

#: Landmark full-table policies (see DESIGN.md §3 on table feasibility).
LANDMARK_TABLE_MODES = ("full", "none")


@dataclass(frozen=True)
class OracleConfig:
    """Settings for building and querying a vicinity oracle.

    Attributes:
        alpha: the paper's vicinity-size parameter; expected vicinity
            size is ``alpha * sqrt(n)`` (§2.2).  Figure 2 sweeps
            ``1/64 .. 64``; the recommended operating point is 4.
        seed: seed for landmark sampling; ``None`` draws a fresh seed.
        probability_scale: multiplier on the sampling probability
            ``deg(u) / (alpha * sqrt(n))``, or ``"auto"`` (default) to
            calibrate the multiplier so the mean vicinity *size* hits
            the paper's ``alpha * sqrt(n)`` target (see
            :func:`repro.core.landmarks.calibrate_scale`).  1.0 is the
            unit edge-mass derivation; 2.0 is the paper's formula read
            literally.  Exposed for the ablation benchmarks.
        kernel: which intersection kernel Algorithm 1 uses.  The paper's
            optimised variant iterates boundary nodes; ``*-smaller``
            picks the side with the smaller iteration set first.
        fallback: what to do when vicinities miss (paper footnote 1
            suggests combining with an exact method; ``bidirectional``
            runs bidirectional BFS/Dijkstra so the oracle never returns
            unknown).
        landmark_tables: ``"full"`` stores a complete single-source
            table per landmark (the paper's data structure);
            ``"none"`` skips them to save memory, at the cost of
            landmark-endpoint queries taking the fallback path.
        landmark_per_component: force at least one landmark into every
            connected component so no vicinity degenerates to a whole
            component.
        store_paths: store predecessor pointers (needed for path
            retrieval; distances-only halves the per-entry memory).
        vicinity_floor: minimum vicinity size as a multiple of
            ``alpha * sqrt(n)`` (0 disables).  A positive floor keeps
            absorbing BFS levels past the nearest landmark until the
            vicinity holds ``floor * alpha * sqrt(n)`` nodes.  Exact for
            unweighted graphs (Theorem 1 holds for any per-node
            radius); it removes the degenerate tiny vicinities behind
            most intersection misses at the cost of proportionally more
            memory (ablation A4).  Unsupported on weighted graphs.
        max_landmarks: optional hard cap on ``|L|`` (highest-degree
            nodes win); ``None`` means the sampled set is used as-is.
    """

    alpha: float = 4.0
    seed: Optional[int] = None
    probability_scale: Union[float, str] = "auto"
    kernel: str = "boundary-smaller"
    fallback: str = "bidirectional"
    landmark_tables: str = "full"
    landmark_per_component: bool = True
    store_paths: bool = True
    max_landmarks: Optional[int] = None
    vicinity_floor: float = 0.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise IndexBuildError("alpha must be positive")
        if isinstance(self.probability_scale, str):
            if self.probability_scale != "auto":
                raise IndexBuildError(
                    "probability_scale must be a positive number or 'auto'"
                )
        elif self.probability_scale <= 0:
            raise IndexBuildError("probability_scale must be positive")
        if self.kernel not in KERNELS:
            raise IndexBuildError(f"unknown kernel {self.kernel!r}; choose from {KERNELS}")
        if self.fallback not in FALLBACKS:
            raise IndexBuildError(
                f"unknown fallback {self.fallback!r}; choose from {FALLBACKS}"
            )
        if self.landmark_tables not in LANDMARK_TABLE_MODES:
            raise IndexBuildError(
                f"unknown landmark_tables {self.landmark_tables!r}; "
                f"choose from {LANDMARK_TABLE_MODES}"
            )
        if self.max_landmarks is not None and self.max_landmarks < 1:
            raise IndexBuildError("max_landmarks must be at least 1 when set")
        if self.vicinity_floor < 0:
            raise IndexBuildError("vicinity_floor must be non-negative")

    def with_updates(self, **changes: object) -> "OracleConfig":
        """Return a copy with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)
