"""Vicinity-intersection kernels (the inner loop of Algorithm 1).

Given the two stored vicinities, the kernel scans an iteration set from
one side and probes membership in the other side's hash table, tracking
``min d(s, w) + d(w, t)``.  Theorem 1 guarantees that minimum is the
exact distance whenever the intersection is non-empty; Lemma 1 licenses
restricting the scan to boundary nodes.

Every probe of the opposite table is counted, because Table 3 reports
hash-table look-ups as its machine-independent cost metric.

Kernels (selected by ``OracleConfig.kernel``):

* ``boundary-source``  — scan ``∂Gamma(s)``, probe ``Gamma(t)`` (the
  paper's Algorithm 1 as printed);
* ``boundary-target``  — the mirror image;
* ``boundary-smaller`` — scan whichever boundary is smaller (the paper
  notes "either s or t" — this is the obvious best choice; default);
* ``full-source`` / ``full-smaller`` — scan entire vicinities instead
  of boundaries (the unoptimised first algorithm of §3.1; kept for
  ablation A1).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple, Union

from repro.core.vicinity import Vicinity

Distance = Union[int, float]

#: Result triple: (best distance or None, witness node or None, probe count).
KernelResult = Tuple[Optional[Distance], Optional[int], int]


def scan_and_probe(
    scan_nodes: Iterable[int],
    scan_dist: Mapping[int, Distance],
    probe_members: frozenset[int],
    probe_dist: Mapping[int, Distance],
) -> KernelResult:
    """Scan ``scan_nodes``, probing each against the opposite vicinity.

    Args:
        scan_nodes: iteration set (a boundary or full member list).
        scan_dist: the scanning side's distance table.
        probe_members: the opposite side's membership set (for weighted
            graphs the distance table can be a superset of the
            vicinity, so membership is checked against this set).
        probe_dist: the opposite side's distance table.

    Returns:
        ``(best, witness, probes)`` — the minimal distance sum and the
        node achieving it (``None``/``None`` if no intersection), plus
        the number of membership probes performed.
    """
    best: Optional[Distance] = None
    witness: Optional[int] = None
    probes = 0
    for w in scan_nodes:
        probes += 1
        if w in probe_members:
            candidate = scan_dist[w] + probe_dist[w]
            if best is None or candidate < best:
                best = candidate
                witness = w
    return best, witness, probes


def run_kernel(kernel: str, vic_s: Vicinity, vic_t: Vicinity) -> KernelResult:
    """Dispatch one intersection according to the configured kernel.

    Callers must have already handled the four shortcut conditions of
    Algorithm 1 (landmark endpoints and mutual vicinity containment):
    Lemma 1's boundary-sufficiency proof assumes ``s ∉ Gamma(t)`` and
    ``t ∉ Gamma(s)``.
    """
    if kernel == "boundary-source":
        return scan_and_probe(vic_s.boundary, vic_s.dist, vic_t.members, vic_t.dist)
    if kernel == "boundary-target":
        return scan_and_probe(vic_t.boundary, vic_t.dist, vic_s.members, vic_s.dist)
    if kernel == "boundary-smaller":
        if len(vic_s.boundary) <= len(vic_t.boundary):
            return scan_and_probe(vic_s.boundary, vic_s.dist, vic_t.members, vic_t.dist)
        return scan_and_probe(vic_t.boundary, vic_t.dist, vic_s.members, vic_s.dist)
    if kernel == "full-source":
        return scan_and_probe(vic_s.members, vic_s.dist, vic_t.members, vic_t.dist)
    if kernel == "full-smaller":
        if vic_s.size <= vic_t.size:
            return scan_and_probe(vic_s.members, vic_s.dist, vic_t.members, vic_t.dist)
        return scan_and_probe(vic_t.members, vic_t.dist, vic_s.members, vic_s.dist)
    raise ValueError(f"unknown intersection kernel: {kernel!r}")
