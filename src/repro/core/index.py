"""The offline phase: build every vicinity and landmark table (§2.2, §3.1).

`VicinityIndex` is the complete precomputed data structure:

* for each non-landmark node ``u``: a :class:`~repro.core.vicinity.Vicinity`
  with exact distances, predecessor pointers and boundary list;
* for each landmark ``u ∈ L`` (in ``landmark_tables="full"`` mode): a
  dense single-source table over all of ``V``;
* the landmark set itself.

Landmarks own *empty* vicinities, exactly as Definition 1 dictates
(``d(u, l(u)) = 0`` makes the ball empty): with full tables they never
need one, and in ``landmark_tables="none"`` mode queries touching a
landmark endpoint either hit condition (4) of Algorithm 1 (the landmark
sits in the *other* endpoint's vicinity) or take the fallback path —
the memory/accuracy trade-off is measured in ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.core.config import OracleConfig
from repro.core.landmarks import LandmarkSet, calibrate_scale, sample_landmarks
from repro.utils.rng import ensure_rng
from repro.core.vicinity import Vicinity, build_vicinity
from repro.exceptions import IndexBuildError
from repro.graph.csr import CSRGraph
from repro.graph.traversal.bounded import truncated_bfs_ball, truncated_dijkstra_ball
from repro.graph.traversal.dijkstra import dijkstra_tree
from repro.graph.traversal.vectorized import bfs_tree_vectorized

#: Optional progress callback: (stage, done, total).
ProgressCallback = Callable[[str, int, int], None]

#: Offline-build representations: ``"dict"`` materialises per-node
#: :class:`~repro.core.vicinity.Vicinity` records (the mutable
#: build/repair representation the dynamic oracle edits); ``"flat"``
#: writes the contiguous :class:`~repro.core.flat.FlatIndex` arrays
#: directly through the batched pipeline in :mod:`repro.core.parallel`
#: — field-identical output, no per-node dicts on the hot path.
REPRESENTATIONS = ("dict", "flat")


class FlatVicinityList(Sequence):
    """Per-node :class:`Vicinity` records materialised lazily from flat arrays.

    A flat-built index stores only the contiguous arrays; consumers of
    the record API (stats, memory accounting, the partitioned
    simulation, dynamic repair) still index ``index.vicinities[u]``, so
    this view reconstructs — and caches — exactly the records they
    touch, the same extraction :func:`repro.io.oracle_store.load_index`
    performs for every node up front.  Assignment is supported because
    the dynamic oracle replaces repaired records in place; overridden
    slots shadow the stored arrays from then on.

    Like the persistence round trip, materialised ``dist`` dicts
    iterate in sorted-node order rather than the builder's discovery
    order — equivalent everywhere except the documented ``full-*``
    witness tie-break.
    """

    def __init__(self, store: Mapping[str, np.ndarray], n: int, weighted: bool) -> None:
        self._store = store
        self._n = int(n)
        self._weighted = bool(weighted)
        self._records: dict[int, Vicinity] = {}

    def __len__(self) -> int:
        return self._n

    def __iter__(self):
        return (self[u] for u in range(self._n))

    def __setitem__(self, u: int, record: Vicinity) -> None:
        self._records[int(u)] = record

    def __getitem__(self, u: int) -> Vicinity:
        u = int(u)
        if u < 0:
            u += self._n
        if not 0 <= u < self._n:
            raise IndexError(u)
        record = self._records.get(u)
        if record is None:
            record = self._materialise(u)
            self._records[u] = record
        return record

    def _materialise(self, u: int) -> Vicinity:
        store = self._store
        lo, hi = int(store["vic_offsets"][u]), int(store["vic_offsets"][u + 1])
        keys = store["vic_nodes"][lo:hi].tolist()
        values = store["vic_dists"][lo:hi].tolist()
        preds = store["vic_preds"][lo:hi].tolist()
        mlo, mhi = (
            int(store["member_offsets"][u]),
            int(store["member_offsets"][u + 1]),
        )
        blo, bhi = (
            int(store["boundary_offsets"][u]),
            int(store["boundary_offsets"][u + 1]),
        )
        radius = store["radii"][u]
        if np.isnan(radius):
            radius = None
        else:
            radius = float(radius) if self._weighted else int(radius)
        return Vicinity(
            node=u,
            radius=radius,
            dist=dict(zip(keys, values)),
            # Missing predecessors sit outside [0, n): -1 in legacy
            # signed stores, the all-ones sentinel in compact ones.
            pred={k: p for k, p in zip(keys, preds) if 0 <= p < self._n},
            members=frozenset(store["member_nodes"][mlo:mhi].tolist()),
            boundary=store["boundary_nodes"][blo:bhi].tolist(),
        )


@dataclass
class LandmarkTable:
    """Dense single-source table stored for one landmark.

    Attributes:
        landmark: the table's root node.
        dist: distance to every node — ``int32`` hop counts with ``-1``
            for unreachable (unweighted) or ``float64`` with ``inf``
            (weighted).
        parent: BFS/shortest-path-tree parent per node (``-1`` where
            unreachable, ``landmark`` at the root); ``None`` when the
            index was built distances-only.
    """

    landmark: int
    dist: np.ndarray
    parent: Optional[np.ndarray]

    def distance_to(self, v: int) -> Optional[float]:
        """Return the stored distance to ``v``, or ``None`` if unreachable."""
        d = self.dist[v]
        if d < 0 or d == np.inf:
            return None
        return int(d) if self.dist.dtype.kind == "i" else float(d)


class VicinityIndex:
    """The full offline data structure of the paper.

    Build with :meth:`build`; query through
    :class:`~repro.core.oracle.VicinityOracle`, which layers Algorithm 1
    on top of this index.
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: OracleConfig,
        landmarks: LandmarkSet,
        vicinities: list[Vicinity],
        tables: dict[int, LandmarkTable],
    ) -> None:
        self.graph = graph
        self.config = config
        self.landmarks = landmarks
        self.vicinities = vicinities
        self.tables = tables

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: CSRGraph,
        config: Optional[OracleConfig] = None,
        *,
        progress: Optional[ProgressCallback] = None,
        representation: str = "dict",
        workers: int = 1,
    ) -> "VicinityIndex":
        """Run the complete offline phase.

        Args:
            graph: the network (undirected CSR; weighted or not).
            config: build settings; defaults to ``OracleConfig()``
                (alpha = 4, the paper's operating point).
            progress: optional callback invoked as
                ``progress(stage, done, total)`` during the two long
                stages (``"vicinities"`` and ``"landmark-tables"``).
            representation: one of :data:`REPRESENTATIONS` — ``"flat"``
                builds the contiguous arrays directly (the fast path;
                field-identical to flattening the dict build), ``"dict"``
                materialises per-node records (the mutable
                representation the dynamic oracle repairs against).
            workers: worker processes for the flat pipeline (sources
                partitioned over a shared-memory CSR); only valid with
                ``representation="flat"``.

        Raises:
            IndexBuildError: for an empty graph or invalid settings.
        """
        if config is None:
            config = OracleConfig()
        if graph.n == 0:
            raise IndexBuildError("cannot build an index over an empty graph")
        rng = ensure_rng(config.seed)
        scale = config.probability_scale
        if scale == "auto":
            # Calibrate so the mean vicinity size meets the paper's
            # alpha * sqrt(n) target (see repro.core.landmarks).
            scale = calibrate_scale(graph, config.alpha, rng=rng)
        landmarks = sample_landmarks(
            graph,
            config.alpha,
            rng=rng,
            scale=float(scale),
            per_component=config.landmark_per_component,
            max_landmarks=config.max_landmarks,
        )
        return cls.from_landmarks(
            graph,
            config,
            landmarks,
            progress=progress,
            representation=representation,
            workers=workers,
        )

    @classmethod
    def from_landmarks(
        cls,
        graph: CSRGraph,
        config: OracleConfig,
        landmarks: LandmarkSet,
        *,
        progress: Optional[ProgressCallback] = None,
        representation: str = "dict",
        workers: int = 1,
    ) -> "VicinityIndex":
        """Build the index for an explicit landmark set.

        Split out from :meth:`build` so persistence and the dynamic
        oracle can rebuild against a frozen ``L``, and so the parity
        suite can pin both representations on one landmark set.
        """
        if representation not in REPRESENTATIONS:
            raise IndexBuildError(
                f"unknown representation {representation!r}; "
                f"choose from {REPRESENTATIONS}"
            )
        if representation == "flat":
            # Local import: parallel wraps this class for the §5
            # simulation, so the build backend is imported lazily.
            from repro.core.parallel import build_flat_store

            store = build_flat_store(
                graph, config, landmarks, workers=workers, progress=progress
            )
            return cls.from_flat_store(graph, config, landmarks, store)
        if workers != 1:
            raise IndexBuildError("workers > 1 requires representation='flat'")
        vicinities = cls._build_vicinities(graph, config, landmarks, progress)
        tables = cls._build_tables(graph, config, landmarks, progress)
        return cls(graph, config, landmarks, vicinities, tables)

    @classmethod
    def from_flat_store(
        cls,
        graph: CSRGraph,
        config: OracleConfig,
        landmarks: LandmarkSet,
        store: dict,
    ) -> "VicinityIndex":
        """Wrap flat-native build output as a fully functional index.

        ``store`` holds the persistence-layout arrays
        (:data:`repro.io.oracle_store.FLAT_STORE_ARRAYS`).  The probe
        surface (:class:`~repro.core.flat.FlatIndex`) is derived
        eagerly — it is what every read path runs on — while the
        record API materialises per-node :class:`Vicinity` views only
        on demand.  ``save_index`` persists the stored arrays without
        any re-flattening.
        """
        from repro.core.flat import FlatIndex

        vicinities = FlatVicinityList(store, graph.n, graph.is_weighted)
        tables: dict[int, LandmarkTable] = {}
        if store["table_dist"].size:
            has_parents = store["table_parent"].size > 0
            for row, landmark in enumerate(landmarks.ids.tolist()):
                tables[landmark] = LandmarkTable(
                    landmark=landmark,
                    dist=store["table_dist"][row],
                    parent=store["table_parent"][row] if has_parents else None,
                )
        index = cls(graph, config, landmarks, vicinities, tables)
        index._flat_store = store
        index._flat_index = FlatIndex.from_store_arrays(
            store,
            n=graph.n,
            weighted=graph.is_weighted,
            store_paths=config.store_paths,
        )
        return index

    @staticmethod
    def _build_vicinities(
        graph: CSRGraph,
        config: OracleConfig,
        landmarks: LandmarkSet,
        progress: Optional[ProgressCallback],
    ) -> list[Vicinity]:
        adj = graph.adjacency()
        flags = landmarks.is_landmark
        min_size: Optional[int] = None
        if config.vicinity_floor > 0:
            if graph.is_weighted:
                raise IndexBuildError(
                    "vicinity_floor requires an unweighted graph "
                    "(per-node radii are only provably exact there)"
                )
            min_size = int(config.vicinity_floor * config.alpha * np.sqrt(graph.n))
        vicinities: list[Vicinity] = []
        step = max(1, graph.n // 50)
        for u in range(graph.n):
            if flags[u]:
                # Definition 1: a landmark's ball is empty.
                vicinities.append(
                    Vicinity(node=u, radius=0, dist={}, pred={}, members=frozenset())
                )
            else:
                if graph.is_weighted:
                    result = truncated_dijkstra_ball(graph, u, flags)
                else:
                    result = truncated_bfs_ball(graph, u, flags, min_size=min_size)
                vicinities.append(
                    build_vicinity(
                        u,
                        result.radius,
                        result.dist,
                        result.pred,
                        result.gamma,
                        adj,
                        store_paths=config.store_paths,
                    )
                )
            if progress is not None and (u + 1) % step == 0:
                progress("vicinities", u + 1, graph.n)
        return vicinities

    @staticmethod
    def _build_tables(
        graph: CSRGraph,
        config: OracleConfig,
        landmarks: LandmarkSet,
        progress: Optional[ProgressCallback],
    ) -> dict[int, LandmarkTable]:
        if config.landmark_tables == "none":
            return {}
        tables: dict[int, LandmarkTable] = {}
        ids = landmarks.ids.tolist()
        for done, landmark in enumerate(ids, start=1):
            if graph.is_weighted:
                dist, parent = dijkstra_tree(graph, landmark)
                parent = parent.astype(np.int32)
            else:
                dist, parent = bfs_tree_vectorized(graph, landmark)
            tables[landmark] = LandmarkTable(
                landmark=landmark,
                dist=dist,
                parent=parent if config.store_paths else None,
            )
            if progress is not None:
                progress("landmark-tables", done, len(ids))
        return tables

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes in the indexed graph."""
        return self.graph.n

    def is_landmark(self, u: int) -> bool:
        """Whether ``u`` is in the landmark set ``L``."""
        self.graph.check_node(u)
        return bool(self.landmarks.is_landmark[u])

    def vicinity(self, u: int) -> Vicinity:
        """Return the stored vicinity record of ``u``."""
        self.graph.check_node(u)
        return self.vicinities[u]

    def table(self, u: int) -> Optional[LandmarkTable]:
        """Return the full table of landmark ``u`` (``None`` if absent)."""
        return self.tables.get(u)

    def radius(self, u: int) -> Optional[float]:
        """Return the vicinity radius ``d(u, l(u))`` of ``u``."""
        return self.vicinity(u).radius

    def __repr__(self) -> str:
        return (
            f"VicinityIndex(n={self.n}, landmarks={self.landmarks.size}, "
            f"alpha={self.config.alpha}, tables={len(self.tables)})"
        )
