"""The offline phase: build every vicinity and landmark table (§2.2, §3.1).

`VicinityIndex` is the complete precomputed data structure:

* for each non-landmark node ``u``: a :class:`~repro.core.vicinity.Vicinity`
  with exact distances, predecessor pointers and boundary list;
* for each landmark ``u ∈ L`` (in ``landmark_tables="full"`` mode): a
  dense single-source table over all of ``V``;
* the landmark set itself.

Landmarks own *empty* vicinities, exactly as Definition 1 dictates
(``d(u, l(u)) = 0`` makes the ball empty): with full tables they never
need one, and in ``landmark_tables="none"`` mode queries touching a
landmark endpoint either hit condition (4) of Algorithm 1 (the landmark
sits in the *other* endpoint's vicinity) or take the fallback path —
the memory/accuracy trade-off is measured in ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.config import OracleConfig
from repro.core.landmarks import LandmarkSet, calibrate_scale, sample_landmarks
from repro.utils.rng import ensure_rng
from repro.core.vicinity import Vicinity, build_vicinity
from repro.exceptions import IndexBuildError
from repro.graph.csr import CSRGraph
from repro.graph.traversal.bounded import truncated_bfs_ball, truncated_dijkstra_ball
from repro.graph.traversal.dijkstra import dijkstra_tree
from repro.graph.traversal.vectorized import bfs_tree_vectorized

#: Optional progress callback: (stage, done, total).
ProgressCallback = Callable[[str, int, int], None]


@dataclass
class LandmarkTable:
    """Dense single-source table stored for one landmark.

    Attributes:
        landmark: the table's root node.
        dist: distance to every node — ``int32`` hop counts with ``-1``
            for unreachable (unweighted) or ``float64`` with ``inf``
            (weighted).
        parent: BFS/shortest-path-tree parent per node (``-1`` where
            unreachable, ``landmark`` at the root); ``None`` when the
            index was built distances-only.
    """

    landmark: int
    dist: np.ndarray
    parent: Optional[np.ndarray]

    def distance_to(self, v: int) -> Optional[float]:
        """Return the stored distance to ``v``, or ``None`` if unreachable."""
        d = self.dist[v]
        if d < 0 or d == np.inf:
            return None
        return int(d) if self.dist.dtype.kind == "i" else float(d)


class VicinityIndex:
    """The full offline data structure of the paper.

    Build with :meth:`build`; query through
    :class:`~repro.core.oracle.VicinityOracle`, which layers Algorithm 1
    on top of this index.
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: OracleConfig,
        landmarks: LandmarkSet,
        vicinities: list[Vicinity],
        tables: dict[int, LandmarkTable],
    ) -> None:
        self.graph = graph
        self.config = config
        self.landmarks = landmarks
        self.vicinities = vicinities
        self.tables = tables

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: CSRGraph,
        config: Optional[OracleConfig] = None,
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> "VicinityIndex":
        """Run the complete offline phase.

        Args:
            graph: the network (undirected CSR; weighted or not).
            config: build settings; defaults to ``OracleConfig()``
                (alpha = 4, the paper's operating point).
            progress: optional callback invoked as
                ``progress(stage, done, total)`` during the two long
                stages (``"vicinities"`` and ``"landmark-tables"``).

        Raises:
            IndexBuildError: for an empty graph or invalid settings.
        """
        if config is None:
            config = OracleConfig()
        if graph.n == 0:
            raise IndexBuildError("cannot build an index over an empty graph")
        rng = ensure_rng(config.seed)
        scale = config.probability_scale
        if scale == "auto":
            # Calibrate so the mean vicinity size meets the paper's
            # alpha * sqrt(n) target (see repro.core.landmarks).
            scale = calibrate_scale(graph, config.alpha, rng=rng)
        landmarks = sample_landmarks(
            graph,
            config.alpha,
            rng=rng,
            scale=float(scale),
            per_component=config.landmark_per_component,
            max_landmarks=config.max_landmarks,
        )
        return cls.from_landmarks(graph, config, landmarks, progress=progress)

    @classmethod
    def from_landmarks(
        cls,
        graph: CSRGraph,
        config: OracleConfig,
        landmarks: LandmarkSet,
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> "VicinityIndex":
        """Build the index for an explicit landmark set.

        Split out from :meth:`build` so persistence and the dynamic
        oracle can rebuild against a frozen ``L``.
        """
        vicinities = cls._build_vicinities(graph, config, landmarks, progress)
        tables = cls._build_tables(graph, config, landmarks, progress)
        return cls(graph, config, landmarks, vicinities, tables)

    @staticmethod
    def _build_vicinities(
        graph: CSRGraph,
        config: OracleConfig,
        landmarks: LandmarkSet,
        progress: Optional[ProgressCallback],
    ) -> list[Vicinity]:
        adj = graph.adjacency()
        flags = landmarks.is_landmark
        min_size: Optional[int] = None
        if config.vicinity_floor > 0:
            if graph.is_weighted:
                raise IndexBuildError(
                    "vicinity_floor requires an unweighted graph "
                    "(per-node radii are only provably exact there)"
                )
            min_size = int(config.vicinity_floor * config.alpha * np.sqrt(graph.n))
        vicinities: list[Vicinity] = []
        step = max(1, graph.n // 50)
        for u in range(graph.n):
            if flags[u]:
                # Definition 1: a landmark's ball is empty.
                vicinities.append(
                    Vicinity(node=u, radius=0, dist={}, pred={}, members=frozenset())
                )
            else:
                if graph.is_weighted:
                    result = truncated_dijkstra_ball(graph, u, flags)
                else:
                    result = truncated_bfs_ball(graph, u, flags, min_size=min_size)
                vicinities.append(
                    build_vicinity(
                        u,
                        result.radius,
                        result.dist,
                        result.pred,
                        result.gamma,
                        adj,
                        store_paths=config.store_paths,
                    )
                )
            if progress is not None and (u + 1) % step == 0:
                progress("vicinities", u + 1, graph.n)
        return vicinities

    @staticmethod
    def _build_tables(
        graph: CSRGraph,
        config: OracleConfig,
        landmarks: LandmarkSet,
        progress: Optional[ProgressCallback],
    ) -> dict[int, LandmarkTable]:
        if config.landmark_tables == "none":
            return {}
        tables: dict[int, LandmarkTable] = {}
        ids = landmarks.ids.tolist()
        for done, landmark in enumerate(ids, start=1):
            if graph.is_weighted:
                dist, parent = dijkstra_tree(graph, landmark)
                parent = parent.astype(np.int32)
            else:
                dist, parent = bfs_tree_vectorized(graph, landmark)
            tables[landmark] = LandmarkTable(
                landmark=landmark,
                dist=dist,
                parent=parent if config.store_paths else None,
            )
            if progress is not None:
                progress("landmark-tables", done, len(ids))
        return tables

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes in the indexed graph."""
        return self.graph.n

    def is_landmark(self, u: int) -> bool:
        """Whether ``u`` is in the landmark set ``L``."""
        self.graph.check_node(u)
        return bool(self.landmarks.is_landmark[u])

    def vicinity(self, u: int) -> Vicinity:
        """Return the stored vicinity record of ``u``."""
        self.graph.check_node(u)
        return self.vicinities[u]

    def table(self, u: int) -> Optional[LandmarkTable]:
        """Return the full table of landmark ``u`` (``None`` if absent)."""
        return self.tables.get(u)

    def radius(self, u: int) -> Optional[float]:
        """Return the vicinity radius ``d(u, l(u))`` of ``u``."""
        return self.vicinity(u).radius

    def __repr__(self) -> str:
        return (
            f"VicinityIndex(n={self.n}, landmarks={self.landmarks.size}, "
            f"alpha={self.config.alpha}, tables={len(self.tables)})"
        )
