"""The canonical query engines: Algorithm 1 over flat arrays.

PR 2 left the codebase with every kernel implemented twice — once over
the per-node dicts (:class:`~repro.core.vicinity.Vicinity` records) and
once over the flattened offset-indexed arrays of
:class:`~repro.core.flat.FlatIndex`.  This module commits to the
contiguous-array representation ("Shortest Paths in Microseconds",
arXiv:1309.0874, wins with exactly this index family) and makes it the
single read path:

* :class:`FlatQueryEngine` — the full single-machine query surface
  (``query``, fused ``query_batch``, ``with_path`` reconstruction,
  landmark fast path, all five intersection kernels) over one
  :class:`FlatIndex`, or over *two* (a source side and a target side),
  which is how the directed oracle shares the implementation: the out-
  vicinities/forward tables are the source side, the in-vicinities/
  backward tables the target side.
* :class:`ShardQueryEngine` — Algorithm 1 under the §5 routing scheme,
  the per-shard worker engine shared by the thread and process shard
  backends (with the round-trip wire accounting those backends fold
  into their :class:`~repro.core.parallel.MessageLog`).
* :class:`QueryEngine` — the protocol every resolver presents to the
  serving layer (:class:`~repro.core.oracle.VicinityOracle`, the shard
  backends and :class:`~repro.service.batch.BatchExecutor` all satisfy
  it).

Results are field-identical to the retired dict path — distance,
method, witness, probes, path — pinned by the parity suite in
``tests/core/test_engine.py`` against :mod:`repro.core.reference`.
The one documented exception: the ablation-only ``full-*`` kernels scan
members in sorted-id order (the flat layout has no dict iteration order
to preserve), so a distance *tie* can elect a different witness.

The batch path is where the representation pays off: endpoint
validation, the landmark lanes and vicinity-membership conditions
(3)/(4) each collapse to one vectorised gather or searchsorted across
the whole batch, and the surviving pairs run the fused intersection
join of :meth:`FlatIndex.intersect_many` — sorted by scan source so
repeated sources share one boundary payload — instead of one kernel
call per pair.
"""

from __future__ import annotations

import time
from typing import Optional, Protocol, Type, runtime_checkable

import numpy as np

from repro.core import _native
from repro.core.flat import JOIN_MAX_SCAN, FlatIndex
from repro.core.oracle import METHOD_CODE, METHODS, QueryResult
from repro.core.parallel import BYTES_PER_WIRE_ENTRY
from repro.exceptions import NodeNotFoundError, QueryError

#: Kernels whose scan order matches the dict path exactly (boundary
#: lists keep their Lemma 1 order through flattening), so witnesses are
#: bit-for-bit identical.  ``full-*`` kernels scan sorted member ids.
ORDER_EXACT_KERNELS = ("boundary-source", "boundary-target", "boundary-smaller")

# Wire codes for the methods the shard worker's column lane can emit
# (from the one authoritative table in :mod:`repro.core.oracle`).
_IDENTICAL = METHOD_CODE["identical"]
_LM_SOURCE = METHOD_CODE["landmark-source"]
_LM_TARGET = METHOD_CODE["landmark-target"]
_T_IN_S = METHOD_CODE["target-in-source-vicinity"]
_S_IN_T = METHOD_CODE["source-in-target-vicinity"]
_INTERSECTION = METHOD_CODE["intersection"]
_MISS = METHOD_CODE["miss"]
_DISCONNECTED = METHOD_CODE["disconnected"]

_EMPTY_I64 = np.zeros(0, dtype=np.int64)


def _unique_pairs(arr, n):
    """``np.unique(arr, axis=0, return_inverse=True)`` over an
    ``(m, 2)`` pair array, via the scalar key ``s * n + t`` — the
    axis-0 form sorts through a structured view, several times slower
    on the small sub-batches the shard workers see.  Node ids are
    ``< n``, so the key is collision-free and its sort order matches
    the lexicographic axis-0 order exactly."""
    keys = arr[:, 0] * n + arr[:, 1]
    uniq_keys, first, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    return arr[first], inverse

# The join/slice-local crossover lives with :class:`FlatIndex` now:
# every index carries a ``join_max_scan`` calibrated from its measured
# boundary-size distribution (floored at the re-exported
# :data:`~repro.core.flat.JOIN_MAX_SCAN` constant), and the fused
# intersection lane below reads the scan side's calibrated value.


@runtime_checkable
class QueryEngine(Protocol):
    """What the serving layer requires of any query resolver.

    Satisfied by :class:`FlatQueryEngine`, the oracles wrapping it, the
    shard backends and :class:`~repro.service.batch.BatchExecutor`
    itself (executors compose).
    """

    def query(self, source: int, target: int, *, with_path: bool = False) -> QueryResult:
        ...

    def query_batch(self, pairs, *, with_path: bool = False) -> list[QueryResult]:
        ...


def run_query_batch(
    engine: "FlatQueryEngine",
    pairs,
    with_path: bool,
    *,
    check_node=None,
    fallback=None,
    record=None,
) -> list[QueryResult]:
    """The one validate → resolve → fallback-convert → record batch loop.

    Shared by :meth:`FlatQueryEngine.query_batch` and both oracle
    wrappers so endpoint validation and fallback conversion cannot
    drift between them.

    Args:
        engine: the resolver whose ``resolve_many`` runs the lanes.
        check_node: raises the caller's canonical error for an invalid
            node id (defaults to :class:`NodeNotFoundError`).
        fallback: ``(source, target, probes, with_path) -> QueryResult``
            replacing ``miss`` results (``None`` = misses stand).
        record: per-result counter hook (``None`` = no counters).
    """
    pair_list = [(int(s), int(t)) for s, t in pairs]
    if not pair_list:
        return []
    arr = np.asarray(pair_list, dtype=np.int64)
    out_of_range = (arr < 0) | (arr >= engine.n)
    if out_of_range.any():
        bad = int(arr[out_of_range][0])
        if check_node is not None:
            check_node(bad)
        raise NodeNotFoundError(bad, engine.n)
    results = engine.resolve_many(arr, with_path)
    if fallback is None and record is None:
        return results
    # Fallback searches are the most expensive lane — keep the batch
    # dedup's promise and run each distinct miss exactly once.
    converted: dict[tuple[int, int], QueryResult] = {}
    for i, result in enumerate(results):
        if fallback is not None and result.method == "miss":
            key = (result.source, result.target)
            answer = converted.get(key)
            if answer is None:
                answer = fallback(
                    result.source, result.target, result.probes, with_path
                )
                converted[key] = answer
            results[i] = result = answer
        if record is not None:
            record(result)
    return results


class FlatQueryEngine:
    """The full Algorithm 1 query surface over flat arrays.

    Args:
        source_flat: the :class:`FlatIndex` probed from the source side
            (conditions (1), (3) and the source-scan kernels).
        target_flat: the target side; defaults to ``source_flat`` (the
            undirected case).  The directed oracle passes its flattened
            in-vicinity/backward-table side here.
        kernel: intersection kernel name (``OracleConfig.kernel``).
        strict_paths: raise upfront on ``with_path=True`` when the
            index stores no predecessors.  The oracle wrapper disables
            this when a fallback is configured, matching the dict
            path's behaviour of failing only if a stored chain is
            actually needed.
        result_cls: result dataclass to emit (the directed oracle
            passes :class:`~repro.core.directed.DirectedQueryResult`).
        kernels: kernel tier override (``"numpy"``/``"native"``/
            ``"auto"``); ``None`` keeps each index's current/lazy
            resolution (see :meth:`FlatIndex.set_kernels`).
    """

    def __init__(
        self,
        source_flat: FlatIndex,
        target_flat: Optional[FlatIndex] = None,
        *,
        kernel: str = "boundary-smaller",
        strict_paths: bool = True,
        result_cls: Type[QueryResult] = QueryResult,
        kernels: Optional[str] = None,
    ) -> None:
        self.out = source_flat
        self.inn = target_flat if target_flat is not None else source_flat
        if self.out.n != self.inn.n:
            raise QueryError("source and target sides must index the same nodes")
        self.n = self.out.n
        self.kernel = kernel
        self.strict_paths = strict_paths
        self.result_cls = result_cls
        self._integral = self.out._integral
        if kernels is not None:
            self.out.set_kernels(kernels)
            if self.inn is not self.out:
                self.inn.set_kernels(kernels)
        else:
            # Resolve both sides now (cheap, cached) so the fused scalar
            # resolver below can bind against settled tiers.
            self.out._native_tier()
            self.inn._native_tier()
        #: Fused single-pair C resolver — ``None`` whenever either side
        #: runs the numpy tier or the kernel name has no C counterpart;
        #: :meth:`resolve` then runs the numpy step loop unchanged.
        self._native_resolve = _native.make_pair_resolver(
            self.out, self.inn, kernel, result_cls, self._integral
        )

    @property
    def kernels(self) -> str:
        """The active kernel tier (the source side's; sides agree)."""
        return self.out.kernels

    @classmethod
    def from_index(cls, index, **overrides) -> "FlatQueryEngine":
        """Flatten a built :class:`VicinityIndex` into a ready engine."""
        options = {
            "kernel": index.config.kernel,
            "strict_paths": index.config.fallback == "none",
        }
        options.update(overrides)
        return cls(FlatIndex.from_index(index), **options)

    @property
    def store_paths(self) -> bool:
        """Whether predecessor chains are available for ``with_path``."""
        return self.out.store_paths

    # ------------------------------------------------------------------
    # the public (validating) surface
    # ------------------------------------------------------------------
    def query(self, source: int, target: int, *, with_path: bool = False) -> QueryResult:
        """Answer one pair (validating endpoints and path support)."""
        for u in (source, target):
            if not 0 <= u < self.n:
                raise NodeNotFoundError(u, self.n)
        self._check_paths(with_path)
        return self.resolve(int(source), int(target), with_path)

    def query_batch(self, pairs, *, with_path: bool = False) -> list[QueryResult]:
        """Answer many pairs through the fused batch lanes, in order."""
        self._check_paths(with_path)
        return run_query_batch(self, pairs, with_path)

    def _check_paths(self, with_path: bool) -> None:
        if with_path and self.strict_paths and not self.store_paths:
            raise QueryError("index was built with store_paths=False")

    # ------------------------------------------------------------------
    # single-pair resolution (Algorithm 1, flat probes)
    # ------------------------------------------------------------------
    def resolve(self, source: int, target: int, with_path: bool) -> QueryResult:
        """Run Algorithm 1 for one validated pair.

        Step order and probe counting replicate the dict path exactly:
        +1 per landmark-flag check, +1 per table hit, +1 per vicinity
        membership probe, plus one probe per scanned kernel node.
        """
        if not with_path and self._native_resolve is not None:
            # The fused C loop covers every pathless outcome; ``None``
            # means the store looked inconsistent mid-scan — re-run the
            # numpy steps so the caller gets the usual QueryError.
            res = self._native_resolve(source, target)
            if res is not None:
                return res
        out, inn = self.out, self.inn
        rc = self.result_cls
        if source == target:
            path = [source] if with_path else None
            return rc(source, target, 0, path, "identical", None, 0)

        # Conditions (1) and (2): a landmark endpoint with a full table.
        probes = 1
        if out.has_table(source):
            probes += 1
            d = out.table_distance(source, target)
            if d is None:
                return rc(source, target, None, None, "disconnected", None, probes)
            path = out.parent_chain(source, target) if with_path else None
            return rc(source, target, d, path, "landmark-source", None, probes)
        probes += 1
        if inn.has_table(target):
            probes += 1
            d = inn.table_distance(target, source)
            if d is None:
                return rc(source, target, None, None, "disconnected", None, probes)
            path = None
            if with_path:
                path = inn.parent_chain(target, source)
                path.reverse()
            return rc(source, target, d, path, "landmark-target", None, probes)

        # Condition (3): t inside Gamma(s).
        probes += 1
        member, d = out.vicinity_probe(source, target)
        if member:
            path = out.pred_chain(source, target, source) if with_path else None
            return rc(
                source, target, d, path, "target-in-source-vicinity", None, probes
            )
        # Condition (4): s inside Gamma(t).
        probes += 1
        member, d = inn.vicinity_probe(target, source)
        if member:
            path = None
            if with_path:
                path = inn.pred_chain(target, source, target)
                path.reverse()
            return rc(
                source, target, d, path, "source-in-target-vicinity", None, probes
            )

        # The main loop: the configured intersection kernel.
        scan_flat, scan_owner, probe_flat, probe_owner = self._pick_sides(
            source, target
        )
        if self.kernel.startswith("full"):
            payload = scan_flat.member_payload(scan_owner)
        else:
            payload = scan_flat.boundary_payload(scan_owner)
        best, witness, kernel_probes = probe_flat.intersect_payload(
            payload[0], payload[1], probe_owner
        )
        probes += kernel_probes
        if best is not None:
            path = self._splice(source, target, witness) if with_path else None
            return rc(source, target, best, path, "intersection", witness, probes)
        return rc(source, target, None, None, "miss", None, probes)

    def _pick_sides(self, source: int, target: int):
        """(scan side, scan owner, probe side, probe owner) per kernel."""
        out, inn = self.out, self.inn
        kernel = self.kernel
        if kernel in ("boundary-source", "full-source"):
            return out, source, inn, target
        if kernel == "boundary-target":
            return inn, target, out, source
        if kernel == "boundary-smaller":
            if out.boundary_counts[source] <= inn.boundary_counts[target]:
                return out, source, inn, target
            return inn, target, out, source
        if kernel == "full-smaller":
            if out.member_counts[source] <= inn.member_counts[target]:
                return out, source, inn, target
            return inn, target, out, source
        raise QueryError(f"unknown intersection kernel: {self.kernel!r}")

    def _splice(self, source: int, target: int, witness: int) -> list[int]:
        """Join the two half-paths at the witness (§3.1's splice)."""
        first = self.out.pred_chain(source, witness, source)
        second = self.inn.pred_chain(target, witness, target)
        second.reverse()
        return first + second[1:]

    def _distance(self, value) -> object:
        return int(value) if self._integral else float(value)

    # ------------------------------------------------------------------
    # fused batch resolution
    # ------------------------------------------------------------------
    def resolve_many(self, arr: np.ndarray, with_path: bool) -> list[QueryResult]:
        """Resolve a validated ``(m, 2)`` pair array through fused lanes.

        Per-pair results are identical to :meth:`resolve`; the lanes
        differ only in how much work is shared:

        * ``s == t`` short-circuits on one vectorised compare;
        * conditions (1)/(2) gather every landmark table distance in
          one fancy-indexing read per lane;
        * conditions (3)/(4) resolve membership and distance for the
          whole batch with two global searchsorteds each
          (:meth:`FlatIndex.member_probe_many`);
        * the survivors run the fused intersection join, sorted by scan
          source so repeated sources share one payload slice.
        """
        out, inn = self.out, self.inn
        rc = self.result_cls
        m = arr.shape[0]
        # Batch-level pair fusion: a production (Zipf) stream repeats
        # pairs heavily, and a repeated pair is the same kernel run.
        # Resolve each distinct pair once and fan the result object out
        # to every occurrence (probes and all — identical to what the
        # per-pair loop would have produced for each duplicate).
        if m > 1:
            uniq, inverse = _unique_pairs(arr, self.n)
            if uniq.shape[0] < m:
                resolved = self.resolve_many(uniq, with_path)
                return [resolved[i] for i in inverse.tolist()]
        sources, targets = arr[:, 0], arr[:, 1]
        results: list[Optional[QueryResult]] = [None] * m

        identical = sources == targets
        for i in np.flatnonzero(identical).tolist():
            s = int(sources[i])
            results[i] = rc(s, s, 0, [s] if with_path else None, "identical", None, 0)

        active = ~identical
        zeros = np.zeros(m, dtype=bool)
        src_lm = (
            active & (out.landmark_row[sources] >= 0) if out.has_tables else zeros
        )
        tgt_lm = (
            active & ~src_lm & (inn.landmark_row[targets] >= 0)
            if inn.has_tables
            else zeros
        )

        idx = np.flatnonzero(src_lm)
        if idx.size:
            # Condition (1): probes = source flag + table hit.
            dists = out.table_lookup_many(sources[idx], targets[idx])
            self._fill_table_lane(
                idx, sources, targets, dists, "landmark-source", 2, with_path, results
            )
        idx = np.flatnonzero(tgt_lm)
        if idx.size:
            # Condition (2): probes = both flags + table hit.
            dists = inn.table_lookup_many(targets[idx], sources[idx])
            self._fill_table_lane(
                idx, sources, targets, dists, "landmark-target", 3, with_path, results
            )

        residual = np.flatnonzero(active & ~src_lm & ~tgt_lm)
        if residual.size:
            # Condition (3) across the whole lane.
            hit, dists = out.member_probe_many(sources[residual], targets[residual])
            for k in np.flatnonzero(hit).tolist():
                i = int(residual[k])
                s, t = int(sources[i]), int(targets[i])
                path = out.pred_chain(s, t, s) if with_path else None
                results[i] = rc(
                    s, t, self._distance(dists[k]), path,
                    "target-in-source-vicinity", None, 3,
                )
            residual = residual[~hit]
        if residual.size:
            # Condition (4) across the survivors.
            hit, dists = inn.member_probe_many(targets[residual], sources[residual])
            for k in np.flatnonzero(hit).tolist():
                i = int(residual[k])
                s, t = int(sources[i]), int(targets[i])
                path = None
                if with_path:
                    path = inn.pred_chain(t, s, t)
                    path.reverse()
                results[i] = rc(
                    s, t, self._distance(dists[k]), path,
                    "source-in-target-vicinity", None, 4,
                )
            residual = residual[~hit]
        if residual.size:
            self._intersect_lane(residual, sources, targets, with_path, results)
        return results

    def _fill_table_lane(
        self, idx, sources, targets, dists, method, probes, with_path, results
    ) -> None:
        unreachable = (dists < 0) | (dists == np.inf)
        rc = self.result_cls
        side = self.out if method == "landmark-source" else self.inn
        for k, i in enumerate(idx.tolist()):
            s, t = int(sources[i]), int(targets[i])
            if unreachable[k]:
                results[i] = rc(s, t, None, None, "disconnected", None, probes)
                continue
            path = None
            if with_path:
                if method == "landmark-source":
                    path = side.parent_chain(s, t)
                else:
                    path = side.parent_chain(t, s)
                    path.reverse()
            results[i] = rc(
                s, t, self._distance(dists[k]), path, method, None, probes
            )

    def _intersect_lane(self, lane, sources, targets, with_path, results) -> None:
        out, inn = self.out, self.inn
        rc = self.result_cls
        s_arr, t_arr = sources[lane], targets[lane]
        kernel = self.kernel
        full = kernel.startswith("full")
        if kernel in ("boundary-source", "full-source"):
            scan_src = np.ones(lane.size, dtype=bool)
        elif kernel == "boundary-target":
            scan_src = np.zeros(lane.size, dtype=bool)
        elif kernel == "boundary-smaller":
            scan_src = out.boundary_counts[s_arr] <= inn.boundary_counts[t_arr]
        elif kernel == "full-smaller":
            scan_src = out.member_counts[s_arr] <= inn.member_counts[t_arr]
        else:
            raise QueryError(f"unknown intersection kernel: {kernel!r}")

        for mask, scan_flat, probe_flat, scan_is_source in (
            (scan_src, out, inn, True),
            (~scan_src, inn, out, False),
        ):
            sub = np.flatnonzero(mask)
            if sub.size == 0:
                continue
            pair_idx = lane[sub]
            scan_owner = (s_arr if scan_is_source else t_arr)[sub]
            probe_owner = (t_arr if scan_is_source else s_arr)[sub]
            # Fused-lane sort: repeated scan sources become adjacent, so
            # their payload slices coalesce into one contiguous gather.
            order = np.argsort(scan_owner, kind="stable")
            pair_idx = pair_idx[order]
            scan_owner = scan_owner[order]
            probe_owner = probe_owner[order]
            if full:
                offsets = scan_flat.member_offsets
                nodes, dists = scan_flat.member_nodes, scan_flat.member_dists
            else:
                offsets = scan_flat.boundary_offsets
                nodes, dists = scan_flat.boundary_nodes, scan_flat.boundary_dists
            sizes = offsets[scan_owner + 1] - offsets[scan_owner]
            if sizes.size and sizes.mean() <= scan_flat.join_max_scan:
                # Thin scans: per-pair call overhead would dominate the
                # handful of comparisons, so run the whole sublane as
                # one flat join.
                best, witness, sizes = probe_flat.intersect_many(
                    offsets, nodes, dists, scan_owner, probe_owner
                )
                for k, i in enumerate(pair_idx.tolist()):
                    s, t = int(sources[i]), int(targets[i])
                    probes = 4 + int(sizes[k])
                    w = int(witness[k])
                    if w < 0:
                        results[i] = rc(s, t, None, None, "miss", None, probes)
                        continue
                    path = self._splice(s, t, w) if with_path else None
                    results[i] = rc(
                        s, t, self._distance(best[k]), path, "intersection", w, probes
                    )
                continue
            # Fat scans: slice-local kernels stay cache-resident where a
            # global-key join would thrash; the scan-owner sort above
            # lets consecutive repeated owners share one payload slice.
            last_owner = None
            payload = None
            for k, i in enumerate(pair_idx.tolist()):
                owner = int(scan_owner[k])
                if owner != last_owner:
                    lo, hi = int(offsets[owner]), int(offsets[owner + 1])
                    payload = (nodes[lo:hi], dists[lo:hi])
                    last_owner = owner
                best, w, kernel_probes = probe_flat.intersect_payload(
                    payload[0], payload[1], int(probe_owner[k])
                )
                s, t = int(sources[i]), int(targets[i])
                probes = 4 + kernel_probes
                if best is None:
                    results[i] = rc(s, t, None, None, "miss", None, probes)
                    continue
                path = self._splice(s, t, w) if with_path else None
                results[i] = rc(
                    s, t, best, path, "intersection", w, probes
                )


class ShardQueryEngine:
    """Algorithm 1 under §5 routing, over a shared :class:`FlatIndex`.

    The per-shard worker engine: the thread backend runs one on each
    shard's worker thread, the process backend inside each worker
    process over the shared-memory mapping.  The step order, probe
    counts and wire-byte modelling replicate the §5 coordinator scheme;
    ``answer`` returns the query result plus the payload byte count of
    every cross-shard round trip the query would have cost.
    """

    __slots__ = ("flat", "assign", "replicate_tables", "_scratch")

    def __init__(
        self,
        flat: FlatIndex,
        assign: np.ndarray,
        replicate_tables: bool,
        *,
        kernels: Optional[str] = None,
        reuse_scratch: bool = False,
    ) -> None:
        self.flat = flat
        self.assign = assign
        self.replicate_tables = replicate_tables
        if kernels is not None:
            flat.set_kernels(kernels)
        # Preallocated result columns, reused across sub-batches.  Only
        # safe when this engine is the sole resolver in its process and
        # each frame is serialised before the next one is answered —
        # i.e. the process-pool worker loop; the thread backend shares
        # one engine across workers and must keep fresh columns.
        self._scratch: Optional[list] = [] if reuse_scratch else None

    @property
    def kernels(self) -> str:
        """The active kernel tier of the underlying index."""
        return self.flat.kernels

    def answer(self, source: int, target: int, with_path: bool, payload=None):
        """Answer one pair; returns ``(result, round_trip_payload_bytes)``.

        ``payload`` optionally carries a precomputed boundary payload
        for ``source`` (the fused batch loop shares it across
        consecutive same-source pairs).
        """
        flat = self.flat
        same_shard = self.assign[source] == self.assign[target]
        trips: list[int] = []
        probes = 0

        if source == target:
            path = [source] if with_path else None
            return QueryResult(source, target, 0, path, "identical", None, 0), trips

        # Condition (1): the source's table lives on the home shard.
        probes += 1
        if flat.has_table(source):
            probes += 1
            d = flat.table_distance(source, target)
            method = "landmark-source" if d is not None else "disconnected"
            path = (
                flat.parent_chain(source, target)
                if with_path and d is not None
                else None
            )
            return QueryResult(source, target, d, path, method, None, probes), trips
        # Condition (2): the target's table costs one round trip unless
        # replicated.
        probes += 1
        if flat.has_table(target):
            probes += 1
            d = flat.table_distance(target, source)
            path = None
            chain_len = 0
            if with_path and d is not None:
                chain = flat.parent_chain(target, source)
                chain_len = len(chain)
                path = list(reversed(chain))
            if not same_shard and not self.replicate_tables:
                trips.append(max(chain_len, 1) * BYTES_PER_WIRE_ENTRY)
            method = "landmark-target" if d is not None else "disconnected"
            return QueryResult(source, target, d, path, method, None, probes), trips

        # Condition (3): Gamma(s) is home-shard-local.
        probes += 1
        member, d = flat.vicinity_probe(source, target)
        if member:
            path = flat.pred_chain(source, target, source) if with_path else None
            return (
                QueryResult(
                    source, target, d, path, "target-in-source-vicinity", None, probes
                ),
                trips,
            )
        # Conditions (4) + intersection: one round trip to shard(t).
        probes += 1
        member, d = flat.vicinity_probe(target, source)
        if member:
            path = None
            chain_len = 0
            if with_path:
                chain = flat.pred_chain(target, source, target)
                chain_len = len(chain)
                path = list(reversed(chain))
            if not same_shard:
                trips.append(max(chain_len, 1) * BYTES_PER_WIRE_ENTRY)
            return (
                QueryResult(
                    source, target, d, path, "source-in-target-vicinity", None, probes
                ),
                trips,
            )
        if payload is None:
            payload = flat.boundary_payload(source)
        scan_nodes, scan_dists = payload
        best, witness, kernel_probes = flat.intersect_payload(
            scan_nodes, scan_dists, target
        )
        probes += kernel_probes
        if best is not None:
            path = None
            chain_len = 0
            if with_path:
                second = flat.pred_chain(target, witness, target)
                chain_len = len(second)
                first = flat.pred_chain(source, witness, source)
                path = first + list(reversed(second))[1:]
            if not same_shard:
                trips.append((len(scan_nodes) + chain_len) * BYTES_PER_WIRE_ENTRY)
            return (
                QueryResult(
                    source, target, best, path, "intersection", witness, probes
                ),
                trips,
            )
        if not same_shard:
            trips.append(len(scan_nodes) * BYTES_PER_WIRE_ENTRY)
        return QueryResult(source, target, None, None, "miss", None, probes), trips

    def answer_batch(self, pairs, with_path: bool = False, cache=None):
        """Answer a home-shard sub-batch; returns ``(results, local,
        remote, trips)``.

        The plain lane (no path reconstruction, no worker cache) runs
        the column-native fused lanes of :meth:`answer_columns` — the
        §5 scheme always scans the source boundary, which is exactly
        the ``boundary-source`` kernel — and derives the modelled
        round-trip payloads from the result columns afterwards, so the
        worker costs what the single-machine batch path costs.  Path
        queries and cache-backed workers take the per-pair loop, whose
        chain lengths and cache hits are inherently per pair; both
        lanes produce identical results and wire totals.
        """
        if with_path or cache is not None:
            return self._answer_loop(pairs, with_path, cache)
        return self._answer_fused(pairs)

    def _answer_fused(self, pairs):
        """The vectorised no-path lane, as objects for direct callers.

        Runs :meth:`answer_columns` and materialises the columns with
        the wire decoder's exact typing rules, so a direct
        ``answer_batch`` call returns the same values a transport
        round trip would.
        """
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if arr.shape[0] == 0:
            return [], 0, 0, []
        dist, method, witness, probes, local, remote, trips = (
            self.answer_columns(arr)
        )
        integral = self.flat._integral
        names = METHODS
        results = []
        append = results.append
        for (s, t), d, code, w, p in zip(
            arr.tolist(), dist.tolist(), method.tolist(),
            witness.tolist(), probes.tolist(),
        ):
            if d != d:  # NaN: miss or disconnected
                value = None
            elif code == _IDENTICAL:
                value = 0
            else:
                value = int(d) if integral else float(d)
            append(QueryResult(
                s, t, value, None, names[code], None if w < 0 else w, p
            ))
        return results, local, remote, trips.tolist()

    # ------------------------------------------------------------------
    # the column-native lane (what the wire frames carry)
    # ------------------------------------------------------------------
    def answer_columns(self, pairs):
        """Answer a no-path sub-batch straight into frame columns.

        Returns ``(dist, method, witness, probes, local, remote,
        trips)``: float64 distances (NaN = unanswered), uint8 wire
        method codes, int64 witnesses (``-1`` = none) and probe counts,
        the local/remote split, and the modelled §5 round-trip payload
        bytes (one int64 entry per cross-shard trip).  This is the
        worker hot path: no ``QueryResult`` is ever constructed, the
        columns drop into :meth:`ResponseFrame.from_columns` as-is.
        """
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        dist, method, witness, probes = self._resolve_columns(arr)
        same = self.assign[arr[:, 0]] == self.assign[arr[:, 1]]
        local = int(np.count_nonzero(same))
        remote = arr.shape[0] - local
        trips = self._trips_from_columns(arr, method, probes, same)
        return dist, method, witness, probes, local, remote, trips

    def _resolve_columns(self, arr):
        """Algorithm 1 lanes over columns — the §5 worker always probes
        source-side first and scans the source boundary (the
        ``boundary-source`` kernel), mirroring
        :meth:`FlatQueryEngine.resolve_many` lane for lane."""
        m = arr.shape[0]
        if m > 1:
            # Same batch-level pair fusion as resolve_many: answer each
            # distinct pair once, fan the columns out by fancy index.
            uniq, inverse = _unique_pairs(arr, self.flat.n)
            if uniq.shape[0] < m:
                d, c, w, p = self._resolve_columns(uniq)
                return d[inverse], c[inverse], w[inverse], p[inverse]
        flat = self.flat
        sources, targets = arr[:, 0], arr[:, 1]
        dist, method, witness, probes = self._result_columns(m)

        identical = sources == targets
        idx = np.flatnonzero(identical)
        if idx.size:
            dist[idx] = 0.0
            method[idx] = _IDENTICAL
        active = ~identical
        zeros = np.zeros(m, dtype=bool)
        src_lm = (
            active & (flat.landmark_row[sources] >= 0)
            if flat.has_tables
            else zeros
        )
        tgt_lm = (
            active & ~src_lm & (flat.landmark_row[targets] >= 0)
            if flat.has_tables
            else zeros
        )
        idx = np.flatnonzero(src_lm)
        if idx.size:
            # Condition (1): probes = source flag + table hit.
            self._table_columns(
                idx, flat.table_lookup_many(sources[idx], targets[idx]),
                _LM_SOURCE, 2, dist, method, probes,
            )
        idx = np.flatnonzero(tgt_lm)
        if idx.size:
            # Condition (2): probes = both flags + table hit.
            self._table_columns(
                idx, flat.table_lookup_many(targets[idx], sources[idx]),
                _LM_TARGET, 3, dist, method, probes,
            )

        residual = np.flatnonzero(active & ~src_lm & ~tgt_lm)
        if residual.size:
            # Condition (3) across the whole lane.
            hit, d = flat.member_probe_many(sources[residual], targets[residual])
            sel = residual[hit]
            dist[sel] = d[hit]
            method[sel] = _T_IN_S
            probes[sel] = 3
            residual = residual[~hit]
        if residual.size:
            # Condition (4) across the survivors.
            hit, d = flat.member_probe_many(targets[residual], sources[residual])
            sel = residual[hit]
            dist[sel] = d[hit]
            method[sel] = _S_IN_T
            probes[sel] = 4
            residual = residual[~hit]
        if residual.size:
            self._intersect_columns(
                residual, sources, targets, dist, method, witness, probes
            )
        return dist, method, witness, probes

    def _result_columns(self, m):
        """Result columns for ``m`` pairs: fresh arrays, or (when built
        with ``reuse_scratch=True``) views over one grow-to-fit buffer
        refilled with the same initial values — byte-identical frames
        without a per-frame allocation."""
        if self._scratch is None:
            return (
                np.full(m, np.nan),
                np.zeros(m, dtype=np.uint8),
                np.full(m, -1, dtype=np.int64),
                np.zeros(m, dtype=np.int64),
            )
        buf = self._scratch
        if not buf or buf[0].size < m:
            cap = max(m, 256)
            buf[:] = [
                np.empty(cap, dtype=np.float64),
                np.empty(cap, dtype=np.uint8),
                np.empty(cap, dtype=np.int64),
                np.empty(cap, dtype=np.int64),
            ]
        dist, method, witness, probes = (col[:m] for col in buf)
        dist.fill(np.nan)
        method.fill(0)
        witness.fill(-1)
        probes.fill(0)
        return dist, method, witness, probes

    @staticmethod
    def _table_columns(idx, dists, code, probe_count, dist, method, probes):
        unreachable = (dists < 0) | (dists == np.inf)
        dist[idx] = np.where(unreachable, np.nan, dists)
        method[idx] = np.where(unreachable, _DISCONNECTED, code)
        probes[idx] = probe_count

    def _intersect_columns(
        self, lane, sources, targets, dist, method, witness, probes
    ):
        """The boundary-source intersection sublane, column form."""
        flat = self.flat
        scan_owner = sources[lane]
        probe_owner = targets[lane]
        # Fused-lane sort: repeated scan sources become adjacent, so
        # their payload slices coalesce (exactly as _intersect_lane).
        order = np.argsort(scan_owner, kind="stable")
        pair_idx = lane[order]
        scan_owner = scan_owner[order]
        probe_owner = probe_owner[order]
        offsets = flat.boundary_offsets
        nodes, dists = flat.boundary_nodes, flat.boundary_dists
        sizes = offsets[scan_owner + 1] - offsets[scan_owner]
        if sizes.size and sizes.mean() <= flat.join_max_scan:
            best, wit, sizes = flat.intersect_many(
                offsets, nodes, dists, scan_owner, probe_owner
            )
            miss = wit < 0
            dist[pair_idx] = np.where(miss, np.nan, best)
            method[pair_idx] = np.where(miss, _MISS, _INTERSECTION)
            witness[pair_idx] = wit
            probes[pair_idx] = 4 + sizes
            return
        last_owner = None
        payload = None
        for k, i in enumerate(pair_idx.tolist()):
            owner = int(scan_owner[k])
            if owner != last_owner:
                lo, hi = int(offsets[owner]), int(offsets[owner + 1])
                payload = (nodes[lo:hi], dists[lo:hi])
                last_owner = owner
            best, w, kernel_probes = flat.intersect_payload(
                payload[0], payload[1], int(probe_owner[k])
            )
            probes[i] = 4 + kernel_probes
            if best is None:
                method[i] = _MISS  # dist stays NaN, witness stays -1
                continue
            dist[i] = best
            method[i] = _INTERSECTION
            witness[i] = w

    def _trips_from_columns(self, arr, method, probes, same):
        """The modelled cross-shard payloads, from the result columns:
        an intersection/miss ships the source's boundary list, a
        condition-(4) hit or a non-replicated target-table answer
        (including its disconnected twin, probes == 3) one entry."""
        remote_mask = ~same
        if not remote_mask.any():
            return _EMPTY_I64
        scan = (method == _INTERSECTION) | (method == _MISS)
        single = method == _S_IN_T
        if not self.replicate_tables:
            single = single | (method == _LM_TARGET) | (
                (method == _DISCONNECTED) & (probes == 3)
            )
        per = np.zeros(arr.shape[0], dtype=np.int64)
        per[scan] = (
            self.flat.boundary_counts[arr[:, 0]][scan].astype(np.int64)
            * BYTES_PER_WIRE_ENTRY
        )
        per[single] = BYTES_PER_WIRE_ENTRY
        return per[remote_mask & (scan | single)]

    def _answer_loop(self, pairs, with_path: bool, cache):
        """The per-pair lane: path chains and worker-cache semantics.

        Pairs are processed in source-sorted order so consecutive
        repeated sources reuse one boundary payload (results come back
        in input order; the wire totals are order-independent).  With a
        ``cache`` (the worker-side :class:`~repro.service.cache.ResultCache`),
        resolved expensive pairs are served from worker memory on
        repeats — skipping both the kernel and the modelled round trip.
        """
        results: list[Optional[QueryResult]] = [None] * len(pairs)
        trips: list[int] = []
        local = remote = 0
        assign = self.assign
        order = sorted(range(len(pairs)), key=lambda i: pairs[i][0])
        last_source = None
        payload = None
        for i in order:
            s, t = pairs[i]
            if assign[s] == assign[t]:
                local += 1
            else:
                remote += 1
            if cache is not None:
                hit = cache.get(s, t, need_path=with_path)
                if hit is not None:
                    results[i] = hit
                    continue
            if s != last_source:
                payload = self.flat.boundary_payload(s)
                last_source = s
            result, query_trips = self.answer(s, t, with_path, payload=payload)
            results[i] = result
            trips.extend(query_trips)
            if cache is not None:
                cache.put(result)
        return results, local, remote, trips

    def run_frame(self, req, cache=None):
        """Answer one wire-frame sub-batch; returns a ``ResponseFrame``.

        The frame entry point every shard transport shares: decode the
        pair array, run :meth:`answer_batch`, encode the result columns
        once.  Errors come back as error frames so transports never
        have to serialise exceptions themselves.
        """
        wire = _wire()
        try:
            start = time.perf_counter_ns()
            if cache is None and not req.with_path:
                # Column-native hot path: the pair array goes straight
                # through the fused lanes into frame columns — no
                # QueryResult, no per-pair Python on the worker.
                dist, method, witness, probes, local, remote, trips = (
                    self.answer_columns(req.pairs)
                )
                return wire.ResponseFrame.from_columns(
                    req.seq, dist=dist, method=method, witness=witness,
                    probes=probes, local=local, remote=remote, trips=trips,
                    exec_ns=time.perf_counter_ns() - start,
                )
            results, local, remote, trips = self.answer_batch(
                req.pair_list(), req.with_path, cache=cache
            )
            exec_ns = time.perf_counter_ns() - start
            stats = cache.snapshot() if cache is not None else None
            return wire.ResponseFrame.from_results(
                req.seq, results, local, remote, trips,
                cache_stats=stats, exec_ns=exec_ns,
            )
        except Exception as exc:  # pragma: no cover - defensive
            return wire.ResponseFrame.error_frame(
                req.seq, f"{type(exc).__name__}: {exc}"
            )


_WIRE_MODULE = None


def _wire():
    # Imported lazily: repro.service.wire pulls in repro.service's
    # package __init__, which imports this module.
    global _WIRE_MODULE
    if _WIRE_MODULE is None:
        from repro.service import wire as _WIRE_MODULE  # noqa: PLW0603
    return _WIRE_MODULE
