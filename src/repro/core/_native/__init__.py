"""ctypes loader and dispatch glue for the compiled kernel tier.

``kernels.c`` compiles (``python -m repro.core._native.build`` or the
best-effort ``setup.py`` hook) into a plain shared library next to this
file; no CPython extension module, no numpy C-API.  This module loads
it lazily, checks that a :class:`~repro.core.flat.FlatIndex`'s arrays
fit the compiled accessors (compact dtypes, C-contiguous), and exposes
thin wrappers whose inputs/outputs are *bit-identical* to the numpy
kernels they replace — pinned by the dual-tier parity suites.

Tier selection (``repro.core.flat.FlatIndex.set_kernels``):

* ``kernels="native"`` / ``REPRO_KERNELS=native`` — require the
  extension; raise :class:`~repro.exceptions.KernelError` when it is
  missing or the index's layout is unsupported.
* ``kernels="numpy"`` / ``REPRO_KERNELS=numpy`` — never load it.
* default (``auto``) — use it when it loads and the layout matches,
  fall back to numpy otherwise (a *broken* compiled artifact warns
  once; a simply-absent one is silent — that is the pure-Python
  install working as designed).
"""

from __future__ import annotations

import ctypes
import os
import threading
import warnings
from typing import Optional

import numpy as np

from repro.core._native.build import HERE, LIB_STEM, lib_suffix
from repro.exceptions import KernelError

#: Tier names accepted by ``kernels=`` arguments and ``REPRO_KERNELS``.
TIERS = ("auto", "numpy", "native")

#: Intersection kernel name -> C dispatch code (kernels.c K_* defines).
KERNEL_CODES = {
    "boundary-source": 0,
    "boundary-target": 1,
    "boundary-smaller": 2,
    "full-source": 3,
    "full-smaller": 4,
}

# Method wire codes, mirroring repro.core.oracle.METHODS order (the C
# side hardcodes the same table; tests/core/test_native.py pins both
# against the authoritative tuple).
_METHOD_NAMES = (
    "identical",
    "landmark-source",
    "landmark-target",
    "target-in-source-vicinity",
    "source-in-target-vicinity",
    "intersection",
    "fallback",
    "miss",
    "disconnected",
    "estimate",  # never emitted by the C side; keeps codes aligned
)
_M_INTERSECTION = 5
_M_MISS = 7
_M_DISCONNECTED = 8

_ID_KINDS = {
    np.dtype(np.uint16): 0,
    np.dtype(np.uint32): 1,
    np.dtype(np.int64): 2,
}
_OFF_KINDS = {np.dtype(np.uint32): 0, np.dtype(np.int64): 1}
_DIST_KINDS = {
    np.dtype(np.int32): 0,
    np.dtype(np.float32): 1,
    np.dtype(np.float64): 2,
}

#: Sentinel a wrapper returns when a *call's* argument dtypes fall
#: outside the compiled accessors (the caller runs the numpy kernel).
UNSUPPORTED = object()


class _FlatView(ctypes.Structure):
    """Mirror of the ``FlatView`` struct in kernels.c (same field order)."""

    _fields_ = [
        ("n", ctypes.c_int64),
        ("weighted", ctypes.c_int32),
        ("id_kind", ctypes.c_int32),
        ("dist_kind", ctypes.c_int32),
        ("vic_off_kind", ctypes.c_int32),
        ("mem_off_kind", ctypes.c_int32),
        ("bnd_off_kind", ctypes.c_int32),
        ("has_tables", ctypes.c_int32),
        ("pad_", ctypes.c_int32),
        ("vic_offsets", ctypes.c_void_p),
        ("vic_nodes", ctypes.c_void_p),
        ("vic_dists", ctypes.c_void_p),
        ("member_offsets", ctypes.c_void_p),
        ("member_nodes", ctypes.c_void_p),
        ("boundary_offsets", ctypes.c_void_p),
        ("boundary_nodes", ctypes.c_void_p),
        ("boundary_dists", ctypes.c_void_p),
        ("table_dist", ctypes.c_void_p),
        ("landmark_row", ctypes.c_void_p),
    ]


_LIB: Optional[ctypes.CDLL] = None
_LIB_TRIED = False
_LOAD_ERROR: Optional[str] = None
_WARNED = False


def _reset_loader_state() -> None:
    """Forget the cached library (tests exercising load failures)."""
    global _LIB, _LIB_TRIED, _LOAD_ERROR, _WARNED
    _LIB = None
    _LIB_TRIED = False
    _LOAD_ERROR = None
    _WARNED = False


def _declare(lib: ctypes.CDLL) -> None:
    p = ctypes.c_void_p
    i32 = ctypes.c_int32
    i64 = ctypes.c_int64
    view = ctypes.POINTER(_FlatView)
    lib.repro_member_probe_many.argtypes = [view, p, p, i64, p, p]
    lib.repro_member_probe_many.restype = None
    lib.repro_table_lookup_many.argtypes = [view, p, p, i64, p]
    lib.repro_table_lookup_many.restype = None
    lib.repro_intersect_many.argtypes = [
        view, p, i32, p, i32, p, i32, p, p, i64, p, p, p,
    ]
    lib.repro_intersect_many.restype = None
    lib.repro_intersect_payload.argtypes = [
        view, p, i32, p, i32, i64, i64, p, p, p, p, p,
    ]
    lib.repro_intersect_payload.restype = i32
    lib.repro_query_pair.argtypes = [
        view, view, i64, i64, i32, p, p, p, p, p, p,
    ]
    lib.repro_query_pair.restype = i32


def library_path():
    """The compiled artifact's expected location (may not exist)."""
    return HERE / f"{LIB_STEM}{lib_suffix()}"


def load_library() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, or ``None`` (cached either way).

    A present-but-unloadable artifact (wrong arch, truncated file)
    warns once and falls back; an absent artifact is silent — that is
    the pure-Python install path, not a failure.
    """
    global _LIB, _LIB_TRIED, _LOAD_ERROR, _WARNED
    if _LIB_TRIED:
        return _LIB
    _LIB_TRIED = True
    path = library_path()
    if not path.exists():
        _LOAD_ERROR = (
            f"compiled kernels not built (expected {path.name}; run "
            "`python -m repro.core._native.build`)"
        )
        return None
    try:
        lib = ctypes.CDLL(str(path))
        _declare(lib)
    except OSError as exc:
        _LOAD_ERROR = f"failed to load {path.name}: {exc}"
        if not _WARNED:
            _WARNED = True
            warnings.warn(
                f"native kernel extension failed to import "
                f"({_LOAD_ERROR}); falling back to the numpy tier",
                RuntimeWarning,
                stacklevel=2,
            )
        return None
    _LIB = lib
    return lib


def load_error() -> Optional[str]:
    """Why the last :func:`load_library` returned ``None`` (or ``None``)."""
    return _LOAD_ERROR


def resolve_tier(choice: Optional[str]) -> str:
    """Normalise a ``kernels=`` argument against ``REPRO_KERNELS``.

    An explicit ``"numpy"``/``"native"`` argument wins; ``None`` or
    ``"auto"`` defers to the environment variable; anything else is a
    configuration error.
    """
    if choice in ("numpy", "native"):
        return choice
    if choice in (None, "auto"):
        env = os.environ.get("REPRO_KERNELS", "").strip().lower()
        if env in ("numpy", "native"):
            return env
        if env and env != "auto":
            raise KernelError(
                f"REPRO_KERNELS={env!r} is not one of {TIERS}"
            )
        return "auto"
    raise KernelError(f"kernels={choice!r} is not one of {TIERS}")


def _contiguous(*arrays) -> bool:
    return all(a.flags["C_CONTIGUOUS"] for a in arrays)


def view_mismatch(flat) -> Optional[str]:
    """Why ``flat``'s arrays cannot feed the compiled accessors.

    Returns ``None`` when the layout is supported; a reason string
    otherwise (compact dtype policy violations only arise on
    hand-built stores — everything the library persists qualifies).
    """
    id_dtype = flat.vic_nodes.dtype
    if id_dtype not in _ID_KINDS:
        return f"unsupported node-id dtype {id_dtype}"
    if flat.member_nodes.dtype != id_dtype or flat.boundary_nodes.dtype != id_dtype:
        return "node-id columns disagree on dtype"
    for name in ("vic_offsets", "member_offsets", "boundary_offsets"):
        if flat.arrays[name].dtype not in _OFF_KINDS:
            return f"unsupported {name} dtype {flat.arrays[name].dtype}"
    dist_dtype = flat.vic_dists.dtype
    if dist_dtype not in _DIST_KINDS:
        return f"unsupported distance dtype {dist_dtype}"
    if flat.boundary_dists.dtype != dist_dtype:
        return "boundary_dists dtype disagrees with vic_dists"
    if flat.has_tables:
        if flat.table_dist.dtype != dist_dtype:
            return "table_dist dtype disagrees with vic_dists"
        if flat.table_dist.ndim != 2 or flat.table_dist.shape[1] != flat.n:
            return "table_dist is not a (rows, n) matrix"
    if flat.landmark_row.dtype != np.dtype(np.int32):
        return f"landmark_row dtype {flat.landmark_row.dtype} (need int32)"
    probe_arrays = [
        flat.vic_offsets, flat.vic_nodes, flat.vic_dists,
        flat.member_offsets, flat.member_nodes,
        flat.boundary_offsets, flat.boundary_nodes, flat.boundary_dists,
        flat.table_dist, flat.landmark_row,
    ]
    if not _contiguous(*probe_arrays):
        return "arrays are not C-contiguous"
    return None


def native_kernels(flat):
    """``(NativeKernels, None)`` for a supported index, else ``(None, why)``."""
    lib = load_library()
    if lib is None:
        return None, _LOAD_ERROR
    reason = view_mismatch(flat)
    if reason is not None:
        return None, reason
    return NativeKernels(flat, lib), None


class NativeKernels:
    """Compiled-kernel façade over one :class:`FlatIndex`'s arrays.

    Holds references to every array the C side points at, so the
    buffers outlive the struct even if the index is mutated around it.
    """

    __slots__ = (
        "lib", "view", "dist_dtype", "_integral", "_refs", "_view_ref",
        "_n", "_tls",
    )

    def __init__(self, flat, lib: ctypes.CDLL) -> None:
        self.lib = lib
        self.dist_dtype = flat.vic_dists.dtype
        self._integral = flat._integral
        self._refs = tuple(flat.arrays.values())
        self._n = int(flat.n)
        # Epoch-stamped scatter scratch for the intersection kernels,
        # one table per thread: calls release the GIL, so the thread
        # backend's workers would otherwise race on shared stamps.
        self._tls = threading.local()
        view = _FlatView()
        view.n = flat.n
        # The C side branches on this exactly where the numpy kernels
        # branch on ``_integral`` (integral == the vic slice doubles as
        # the member set), so mirror that flag, not ``flat.weighted``.
        view.weighted = 0 if flat._integral else 1
        view.id_kind = _ID_KINDS[flat.vic_nodes.dtype]
        view.dist_kind = _DIST_KINDS[flat.vic_dists.dtype]
        view.vic_off_kind = _OFF_KINDS[flat.vic_offsets.dtype]
        view.mem_off_kind = _OFF_KINDS[flat.member_offsets.dtype]
        view.bnd_off_kind = _OFF_KINDS[flat.boundary_offsets.dtype]
        view.has_tables = 1 if flat.has_tables else 0
        view.vic_offsets = flat.vic_offsets.ctypes.data
        view.vic_nodes = flat.vic_nodes.ctypes.data
        view.vic_dists = flat.vic_dists.ctypes.data
        view.member_offsets = flat.member_offsets.ctypes.data
        view.member_nodes = flat.member_nodes.ctypes.data
        view.boundary_offsets = flat.boundary_offsets.ctypes.data
        view.boundary_nodes = flat.boundary_nodes.ctypes.data
        view.boundary_dists = flat.boundary_dists.ctypes.data
        view.table_dist = flat.table_dist.ctypes.data
        view.landmark_row = flat.landmark_row.ctypes.data
        self.view = view
        self._view_ref = ctypes.byref(view)

    def scratch(self):
        """This thread's ``(stamp_ptr, pos_ptr, epoch_ptr)`` triple."""
        s = getattr(self._tls, "scratch", None)
        if s is None:
            stamp = np.zeros(self._n, dtype=np.int32)
            pos = np.zeros(self._n, dtype=np.int32)
            epoch = np.zeros(1, dtype=np.int32)
            s = (
                stamp.ctypes.data, pos.ctypes.data, epoch.ctypes.data,
                stamp, pos, epoch,  # keep the arrays alive
            )
            self._tls.scratch = s
        return s

    def callpack(self):
        """Per-thread scratch plus preallocated result buffers.

        ``(stamp_ptr, pos_ptr, epoch_ptr, dist_ptr, witness_ptr,
        probes_ptr, dist_buf, int_buf)`` — the fused scalar resolver
        reads results straight out of the buffers instead of boxing
        three fresh ctypes values per call.
        """
        pack = getattr(self._tls, "pack", None)
        if pack is None:
            s = self.scratch()
            dist_buf = (ctypes.c_double * 1)()
            int_buf = (ctypes.c_int64 * 2)()
            base = ctypes.addressof(int_buf)
            pack = (
                s[0], s[1], s[2],
                ctypes.addressof(dist_buf), base, base + 8,
                dist_buf, int_buf,
            )
            self._tls.pack = pack
        return pack

    # -- kernel wrappers (signatures and outputs mirror FlatIndex) ----
    def member_probe_many(self, owners, others):
        owners = np.ascontiguousarray(owners, dtype=np.int64)
        others = np.ascontiguousarray(others, dtype=np.int64)
        m = owners.size
        hit = np.zeros(m, dtype=bool)
        dists = np.zeros(m, dtype=self.dist_dtype)
        if m:
            self.lib.repro_member_probe_many(
                self._view_ref, owners.ctypes.data, others.ctypes.data,
                m, hit.ctypes.data, dists.ctypes.data,
            )
        return hit, dists

    def table_lookup_many(self, endpoints, others):
        endpoints = np.ascontiguousarray(endpoints, dtype=np.int64)
        others = np.ascontiguousarray(others, dtype=np.int64)
        out = np.empty(endpoints.size, dtype=np.float64)
        if endpoints.size:
            self.lib.repro_table_lookup_many(
                self._view_ref, endpoints.ctypes.data, others.ctypes.data,
                endpoints.size, out.ctypes.data,
            )
        return out

    def intersect_many(
        self, scan_offsets, scan_nodes, scan_dists, scan_owner, probe_owner
    ):
        off_kind = _OFF_KINDS.get(scan_offsets.dtype)
        id_kind = _ID_KINDS.get(scan_nodes.dtype)
        dist_kind = _DIST_KINDS.get(scan_dists.dtype)
        if (
            off_kind is None or id_kind is None or dist_kind is None
            or not _contiguous(scan_offsets, scan_nodes, scan_dists)
        ):
            return UNSUPPORTED
        scan_owner = np.ascontiguousarray(scan_owner, dtype=np.int64)
        probe_owner = np.ascontiguousarray(probe_owner, dtype=np.int64)
        lanes = scan_owner.size
        best = np.full(lanes, np.inf, dtype=np.float64)
        witness = np.full(lanes, -1, dtype=np.int64)
        sizes = np.zeros(lanes, dtype=np.int64)
        if lanes:
            self.lib.repro_intersect_many(
                self._view_ref,
                scan_offsets.ctypes.data, off_kind,
                scan_nodes.ctypes.data, id_kind,
                scan_dists.ctypes.data, dist_kind,
                scan_owner.ctypes.data, probe_owner.ctypes.data, lanes,
                best.ctypes.data, witness.ctypes.data, sizes.ctypes.data,
            )
        return best, witness, sizes

    def intersect_payload(self, scan_nodes, scan_dists, target):
        probes = int(scan_nodes.size)
        if probes == 0:
            return None, None, probes
        id_kind = _ID_KINDS.get(scan_nodes.dtype)
        dist_kind = _DIST_KINDS.get(scan_dists.dtype)
        if (
            id_kind is None or dist_kind is None
            or not _contiguous(scan_nodes, scan_dists)
        ):
            return UNSUPPORTED
        best = ctypes.c_double()
        witness = ctypes.c_int64()
        scratch = self.scratch()
        hit = self.lib.repro_intersect_payload(
            self._view_ref,
            scan_nodes.ctypes.data, id_kind,
            scan_dists.ctypes.data, dist_kind,
            probes, target, scratch[0], scratch[1], scratch[2],
            ctypes.byref(best), ctypes.byref(witness),
        )
        if not hit:
            return None, None, probes
        value = int(best.value) if self._integral else float(best.value)
        return value, int(witness.value), probes


def make_pair_resolver(out_flat, inn_flat, kernel, result_cls, integral):
    """A fused scalar resolver closure, or ``None`` when unavailable.

    Binds the two sides' views and the kernel code once; the returned
    callable answers ``(source, target)`` with a fully-typed result
    object field-identical to ``FlatQueryEngine.resolve(..., False)``,
    or ``None`` when the C side reports an inconsistent store (the
    engine then re-runs the numpy path, which raises its usual error).
    """
    out_nk = getattr(out_flat, "_native", None)
    inn_nk = getattr(inn_flat, "_native", None)
    if out_nk is None or inn_nk is None:
        return None
    code = KERNEL_CODES.get(kernel)
    if code is None:
        return None
    fn = out_nk.lib.repro_query_pair
    outv, innv = out_nk._view_ref, inn_nk._view_ref
    names = _METHOD_NAMES
    # The scatter scratch is sized for the probe side's node range; both
    # sides index the same nodes (engine-enforced), so one table serves
    # whichever side ends up probing.
    pack_of = out_nk.callpack if out_nk._n >= inn_nk._n else inn_nk.callpack

    def resolve_pair(source, target):
        pk = pack_of()
        m = fn(
            outv, innv, source, target, code,
            pk[0], pk[1], pk[2], pk[3], pk[4], pk[5],
        )
        if m < 0:
            return None
        if m == 0:
            return result_cls(source, target, 0, None, "identical", None, 0)
        ints = pk[7]
        probes = ints[1]
        if m == _M_MISS or m == _M_DISCONNECTED:
            return result_cls(
                source, target, None, None, names[m], None, probes
            )
        dist = pk[6][0]
        value = int(dist) if integral else dist
        witness = ints[0] if m == _M_INTERSECTION else None
        return result_cls(
            source, target, value, None, names[m], witness, probes
        )

    return resolve_pair
