/* Compiled hot-path kernels over the FlatIndex array layout.
 *
 * A plain shared library loaded via ctypes — no Python.h, no numpy
 * C-API — operating directly on the compact contiguous arrays a
 * FlatIndex already holds (including read-only memory-mapped views,
 * which are never written).  Every function replicates its numpy
 * counterpart in repro/core/flat.py / engine.py bit for bit:
 *
 *   repro_member_probe_many  <->  FlatIndex.member_probe_many
 *   repro_intersect_many     <->  FlatIndex.intersect_many
 *   repro_intersect_payload  <->  FlatIndex.intersect_payload
 *   repro_table_lookup_many  <->  FlatIndex.table_lookup_many
 *   repro_query_pair         <->  FlatQueryEngine.resolve (no-path)
 *
 * Parity invariants the code below must preserve (pinned by the
 * dual-tier suites in tests/core/):
 *   - witnesses are the FIRST minimum in scan order (strict `<`);
 *   - weighted hit sums accumulate in float64 (double);
 *   - membership uses the member slice, distances the vic slice,
 *     except the unweighted intersect_payload fast path where the
 *     vic slice settles both (exactly like the numpy kernels);
 *   - unreachable table entries are d < 0 or d == inf.
 *
 * Dtype polymorphism is handled by tiny switch-based accessors: the
 * kind codes are fixed per index, so the branches predict perfectly
 * and the code stays one copy per kernel instead of 72 monomorphs.
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

/* kind codes — must match repro/core/_native/__init__.py */
#define ID_U16 0
#define ID_U32 1
#define ID_I64 2
#define OFF_U32 0
#define OFF_I64 1
#define DIST_I32 0
#define DIST_F32 1
#define DIST_F64 2

/* method wire codes — must match repro.core.oracle.METHOD_CODE */
#define M_IDENTICAL 0
#define M_LM_SOURCE 1
#define M_LM_TARGET 2
#define M_T_IN_S 3
#define M_S_IN_T 4
#define M_INTERSECTION 5
#define M_MISS 7
#define M_DISCONNECTED 8

/* intersection kernel codes — must match engine dispatch */
#define K_BOUNDARY_SOURCE 0
#define K_BOUNDARY_TARGET 1
#define K_BOUNDARY_SMALLER 2
#define K_FULL_SOURCE 3
#define K_FULL_SMALLER 4

typedef struct {
    int64_t n;
    int32_t weighted;     /* 0 = integral distances (unweighted) */
    int32_t id_kind;      /* vic/member/boundary node columns      */
    int32_t dist_kind;    /* vic/boundary/table distance columns   */
    int32_t vic_off_kind;
    int32_t mem_off_kind;
    int32_t bnd_off_kind;
    int32_t has_tables;
    int32_t pad_;
    const void *vic_offsets;
    const void *vic_nodes;
    const void *vic_dists;
    const void *member_offsets;
    const void *member_nodes;
    const void *boundary_offsets;
    const void *boundary_nodes;
    const void *boundary_dists;
    const void *table_dist;       /* rows x n, row-major */
    const int32_t *landmark_row;  /* n entries, -1 = not a landmark */
} FlatView;

static inline int64_t get_off(const void *p, int32_t kind, int64_t i)
{
    if (kind == OFF_U32)
        return (int64_t)((const uint32_t *)p)[i];
    return ((const int64_t *)p)[i];
}

static inline int64_t get_id(const void *p, int32_t kind, int64_t i)
{
    switch (kind) {
    case ID_U16:
        return (int64_t)((const uint16_t *)p)[i];
    case ID_U32:
        return (int64_t)((const uint32_t *)p)[i];
    default:
        return ((const int64_t *)p)[i];
    }
}

static inline double get_dist(const void *p, int32_t kind, int64_t i)
{
    switch (kind) {
    case DIST_I32:
        return (double)((const int32_t *)p)[i];
    case DIST_F32:
        return (double)((const float *)p)[i];
    default:
        return ((const double *)p)[i];
    }
}

static inline void set_dist(void *p, int32_t kind, int64_t i, double v)
{
    switch (kind) {
    case DIST_I32:
        ((int32_t *)p)[i] = (int32_t)v;
        break;
    case DIST_F32:
        ((float *)p)[i] = (float)v;
        break;
    default:
        ((double *)p)[i] = v;
    }
}

/* numpy searchsorted side='left': first index in [lo, hi) with
 * ids[i] >= key. */
static inline int64_t lower_bound(
    const void *ids, int32_t kind, int64_t lo, int64_t hi, int64_t key)
{
    while (lo < hi) {
        int64_t mid = lo + ((hi - lo) >> 1);
        if (get_id(ids, kind, mid) < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* Distance of `node` from `u`'s vic slice, gathered at the lower-bound
 * position exactly like the numpy searchsorted gathers (the caller has
 * already established membership, so the position is an exact hit; the
 * clamp only guards a broken store the same way numpy's fancy gather
 * would read a defined-but-arbitrary element). */
static inline double vic_slice_dist(const FlatView *v, int64_t u, int64_t node)
{
    int64_t lo = get_off(v->vic_offsets, v->vic_off_kind, u);
    int64_t hi = get_off(v->vic_offsets, v->vic_off_kind, u + 1);
    int64_t pos = lower_bound(v->vic_nodes, v->id_kind, lo, hi, node);
    if (pos >= hi)
        pos = hi > lo ? hi - 1 : lo;
    return get_dist(v->vic_dists, v->dist_kind, pos);
}

/* `other in member slice of u` — the membership rule of
 * member_probe_many / intersect_many / the weighted payload kernel. */
static inline int member_hit(const FlatView *v, int64_t u, int64_t other)
{
    int64_t lo = get_off(v->member_offsets, v->mem_off_kind, u);
    int64_t hi = get_off(v->member_offsets, v->mem_off_kind, u + 1);
    int64_t pos = lower_bound(v->member_nodes, v->id_kind, lo, hi, other);
    return pos < hi && get_id(v->member_nodes, v->id_kind, pos) == other;
}

/* FlatIndex.vicinity_probe: 1 = member (dist written), 0 = not a
 * member, -1 = inconsistent store (member without a vic entry — the
 * numpy path raises QueryError; the caller falls back to it). */
static inline int vic_probe(
    const FlatView *v, int64_t u, int64_t other, double *dist)
{
    if (!v->weighted) {
        int64_t lo = get_off(v->vic_offsets, v->vic_off_kind, u);
        int64_t hi = get_off(v->vic_offsets, v->vic_off_kind, u + 1);
        int64_t pos = lower_bound(v->vic_nodes, v->id_kind, lo, hi, other);
        if (pos >= hi || get_id(v->vic_nodes, v->id_kind, pos) != other)
            return 0;
        *dist = get_dist(v->vic_dists, v->dist_kind, pos);
        return 1;
    }
    if (!member_hit(v, u, other))
        return 0;
    {
        int64_t lo = get_off(v->vic_offsets, v->vic_off_kind, u);
        int64_t hi = get_off(v->vic_offsets, v->vic_off_kind, u + 1);
        int64_t pos = lower_bound(v->vic_nodes, v->id_kind, lo, hi, other);
        if (pos >= hi || get_id(v->vic_nodes, v->id_kind, pos) != other)
            return -1;
        *dist = get_dist(v->vic_dists, v->dist_kind, pos);
    }
    return 1;
}

static inline double table_lookup(const FlatView *v, int64_t lm, int64_t other)
{
    int64_t row = (int64_t)v->landmark_row[lm];
    return get_dist(v->table_dist, v->dist_kind, row * v->n + other);
}

void repro_member_probe_many(
    const FlatView *v,
    const int64_t *owners,
    const int64_t *others,
    int64_t m,
    uint8_t *hit_out,
    void *dist_out)
{
    for (int64_t i = 0; i < m; i++) {
        if (member_hit(v, owners[i], others[i])) {
            hit_out[i] = 1;
            set_dist(dist_out, v->dist_kind, i,
                     vic_slice_dist(v, owners[i], others[i]));
        } else {
            hit_out[i] = 0;
        }
    }
}

void repro_table_lookup_many(
    const FlatView *v,
    const int64_t *endpoints,
    const int64_t *others,
    int64_t m,
    double *out)
{
    for (int64_t i = 0; i < m; i++)
        out[i] = table_lookup(v, endpoints[i], others[i]);
}

void repro_intersect_many(
    const FlatView *probe,
    const void *scan_offsets, int32_t scan_off_kind,
    const void *scan_nodes, int32_t scan_id_kind,
    const void *scan_dists, int32_t scan_dist_kind,
    const int64_t *scan_owner,
    const int64_t *probe_owner,
    int64_t lanes,
    double *best_out,
    int64_t *witness_out,
    int64_t *sizes_out)
{
    for (int64_t i = 0; i < lanes; i++) {
        int64_t lo = get_off(scan_offsets, scan_off_kind, scan_owner[i]);
        int64_t hi = get_off(scan_offsets, scan_off_kind, scan_owner[i] + 1);
        int64_t po = probe_owner[i];
        int64_t mlo = get_off(probe->member_offsets, probe->mem_off_kind, po);
        int64_t mhi = get_off(probe->member_offsets, probe->mem_off_kind, po + 1);
        double best = INFINITY;
        int64_t witness = -1;
        sizes_out[i] = hi - lo;
        for (int64_t j = lo; j < hi; j++) {
            int64_t node = get_id(scan_nodes, scan_id_kind, j);
            int64_t pos = lower_bound(
                probe->member_nodes, probe->id_kind, mlo, mhi, node);
            if (pos >= mhi
                || get_id(probe->member_nodes, probe->id_kind, pos) != node)
                continue;
            {
                double sum = get_dist(scan_dists, scan_dist_kind, j)
                    + vic_slice_dist(probe, po, node);
                if (sum < best) {
                    best = sum;
                    witness = node;
                }
            }
        }
        best_out[i] = best;
        witness_out[i] = witness;
    }
}

static inline int32_t ilog2_floor(int64_t x)
{
    int32_t b = 0;
    while (x > 1) {
        x >>= 1;
        b++;
    }
    return b;
}

/* Bump the scatter-table epoch; on (rare) wrap, clear the stamps so no
 * stale epoch value can alias the fresh one. */
static inline int32_t next_epoch(int32_t *stamp, int64_t n, int32_t *epoch_io)
{
    int32_t e = *epoch_io + 1;
    if (e == INT32_MAX) {
        memset(stamp, 0, (size_t)n * sizeof(int32_t));
        e = 1;
    }
    *epoch_io = e;
    return e;
}

/* The shared intersection core: scan positions [lo, hi) of the given
 * node/distance arrays, in order, against Gamma(powner) on `probe`.
 * When `scan_view` is non-NULL the scan distances are full-kernel
 * member distances, gathered from `scan_view`'s vic slice of `sowner`
 * (member_payload semantics); otherwise `scan_dists[j]` is used.
 *
 * Two strategies with IDENTICAL results (first minimum in scan order,
 * double accumulation): a slice-local binary search per scanned node,
 * or — when the scan is large enough that count*log(len) search steps
 * cost more than len+count sequential ones — scattering the probe
 * side's slice into the epoch-stamped scratch table and walking the
 * scan with O(1) membership lookups.  The choice is invisible to the
 * caller; scratch == NULL forces the binary-search lane.
 *
 * Returns the witness node, or -1 on miss; *best_out only on a hit. */
static int64_t intersect_slice(
    const FlatView *probe, int64_t powner,
    const FlatView *scan_view, int64_t sowner,
    const void *scan_nodes, int32_t scan_id_kind,
    const void *scan_dists, int32_t scan_dist_kind,
    int64_t lo, int64_t hi,
    int32_t *stamp, int32_t *spos, int32_t *epoch_io,
    double *best_out)
{
    double best = INFINITY;
    int64_t witness = -1;
    int64_t count = hi - lo;
    if (count <= 0)
        return -1;
    if (!probe->weighted) {
        /* Unweighted fast path: the vic slice IS the member set. */
        int64_t plo = get_off(probe->vic_offsets, probe->vic_off_kind, powner);
        int64_t phi = get_off(
            probe->vic_offsets, probe->vic_off_kind, powner + 1);
        int64_t len = phi - plo;
        if (len == 0)
            return -1;
        if (stamp != NULL && count >= 16
            && count * (int64_t)(ilog2_floor(len) + 1) > len + count) {
            int32_t e = next_epoch(stamp, probe->n, epoch_io);
            for (int64_t j = plo; j < phi; j++) {
                int64_t node = get_id(probe->vic_nodes, probe->id_kind, j);
                stamp[node] = e;
                spos[node] = (int32_t)(j - plo);
            }
            for (int64_t j = lo; j < hi; j++) {
                int64_t node = get_id(scan_nodes, scan_id_kind, j);
                if (stamp[node] != e)
                    continue;
                {
                    double scan_d = scan_view != NULL
                        ? vic_slice_dist(scan_view, sowner, node)
                        : get_dist(scan_dists, scan_dist_kind, j);
                    double sum = get_dist(probe->vic_dists, probe->dist_kind,
                                          plo + (int64_t)spos[node])
                        + scan_d;
                    if (sum < best) {
                        best = sum;
                        witness = node;
                    }
                }
            }
        } else {
            for (int64_t j = lo; j < hi; j++) {
                int64_t node = get_id(scan_nodes, scan_id_kind, j);
                int64_t pos = lower_bound(
                    probe->vic_nodes, probe->id_kind, plo, phi, node);
                if (pos >= phi
                    || get_id(probe->vic_nodes, probe->id_kind, pos) != node)
                    continue;
                {
                    double scan_d = scan_view != NULL
                        ? vic_slice_dist(scan_view, sowner, node)
                        : get_dist(scan_dists, scan_dist_kind, j);
                    double sum = get_dist(
                        probe->vic_dists, probe->dist_kind, pos) + scan_d;
                    if (sum < best) {
                        best = sum;
                        witness = node;
                    }
                }
            }
        }
    } else {
        int64_t mlo = get_off(
            probe->member_offsets, probe->mem_off_kind, powner);
        int64_t mhi = get_off(
            probe->member_offsets, probe->mem_off_kind, powner + 1);
        int64_t len = mhi - mlo;
        if (len == 0)
            return -1;
        if (stamp != NULL && count >= 16
            && count * (int64_t)(ilog2_floor(len) + 1) > len + count) {
            int32_t e = next_epoch(stamp, probe->n, epoch_io);
            for (int64_t j = mlo; j < mhi; j++)
                stamp[get_id(probe->member_nodes, probe->id_kind, j)] = e;
            for (int64_t j = lo; j < hi; j++) {
                int64_t node = get_id(scan_nodes, scan_id_kind, j);
                if (stamp[node] != e)
                    continue;
                {
                    double scan_d = scan_view != NULL
                        ? vic_slice_dist(scan_view, sowner, node)
                        : get_dist(scan_dists, scan_dist_kind, j);
                    /* Hits are rare; the vic-slice search only runs
                     * for them (same gather as the numpy kernel). */
                    double sum = scan_d + vic_slice_dist(probe, powner, node);
                    if (sum < best) {
                        best = sum;
                        witness = node;
                    }
                }
            }
        } else {
            for (int64_t j = lo; j < hi; j++) {
                int64_t node = get_id(scan_nodes, scan_id_kind, j);
                int64_t pos = lower_bound(
                    probe->member_nodes, probe->id_kind, mlo, mhi, node);
                if (pos >= mhi
                    || get_id(probe->member_nodes, probe->id_kind, pos)
                        != node)
                    continue;
                {
                    double scan_d = scan_view != NULL
                        ? vic_slice_dist(scan_view, sowner, node)
                        : get_dist(scan_dists, scan_dist_kind, j);
                    double sum = scan_d + vic_slice_dist(probe, powner, node);
                    if (sum < best) {
                        best = sum;
                        witness = node;
                    }
                }
            }
        }
    }
    if (witness < 0)
        return -1;
    *best_out = best;
    return witness;
}

/* Returns 1 on an intersection hit (best/witness written), 0 on miss. */
int32_t repro_intersect_payload(
    const FlatView *probe,
    const void *scan_nodes, int32_t scan_id_kind,
    const void *scan_dists, int32_t scan_dist_kind,
    int64_t count,
    int64_t target,
    int32_t *stamp, int32_t *spos, int32_t *epoch_io,
    double *best_out,
    int64_t *witness_out)
{
    double best;
    int64_t witness = intersect_slice(
        probe, target, NULL, 0,
        scan_nodes, scan_id_kind, scan_dists, scan_dist_kind,
        0, count, stamp, spos, epoch_io, &best);
    if (witness < 0)
        return 0;
    *best_out = best;
    *witness_out = witness;
    return 1;
}

/* The fused scalar Algorithm 1 loop (FlatQueryEngine.resolve, no-path
 * lane): identical -> landmark tables -> membership probes ->
 * configured intersection kernel, probes counted exactly like the
 * Python path.  Returns the method wire code, or -1 when the store is
 * inconsistent (the caller re-runs the numpy path, which raises). */
int32_t repro_query_pair(
    const FlatView *out,
    const FlatView *inn,
    int64_t source,
    int64_t target,
    int32_t kernel,
    int32_t *stamp,
    int32_t *spos,
    int32_t *epoch_io,
    double *dist_out,
    int64_t *witness_out,
    int64_t *probes_out)
{
    double d = 0.0;
    int64_t probes;
    int hit;

    if (source == target) {
        *dist_out = 0.0;
        *probes_out = 0;
        return M_IDENTICAL;
    }
    probes = 1;
    /* Condition (1): source is a landmark with a full table. */
    if (out->has_tables && out->landmark_row[source] >= 0) {
        probes += 1;
        *probes_out = probes;
        d = table_lookup(out, source, target);
        if (d < 0 || isinf(d))
            return M_DISCONNECTED;
        *dist_out = d;
        return M_LM_SOURCE;
    }
    probes += 1;
    /* Condition (2): target is a landmark with a full table. */
    if (inn->has_tables && inn->landmark_row[target] >= 0) {
        probes += 1;
        *probes_out = probes;
        d = table_lookup(inn, target, source);
        if (d < 0 || isinf(d))
            return M_DISCONNECTED;
        *dist_out = d;
        return M_LM_TARGET;
    }
    probes += 1;
    /* Condition (3): t inside Gamma(s). */
    hit = vic_probe(out, source, target, &d);
    if (hit < 0)
        return -1;
    if (hit) {
        *dist_out = d;
        *probes_out = probes;
        return M_T_IN_S;
    }
    probes += 1;
    /* Condition (4): s inside Gamma(t). */
    hit = vic_probe(inn, target, source, &d);
    if (hit < 0)
        return -1;
    if (hit) {
        *dist_out = d;
        *probes_out = probes;
        return M_S_IN_T;
    }

    /* The configured intersection kernel (_pick_sides). */
    {
        const FlatView *scan = out;
        const FlatView *probe = inn;
        int64_t sowner = source;
        int64_t powner = target;
        int full = kernel == K_FULL_SOURCE || kernel == K_FULL_SMALLER;

        if (kernel == K_BOUNDARY_TARGET) {
            scan = inn;
            probe = out;
            sowner = target;
            powner = source;
        } else if (kernel == K_BOUNDARY_SMALLER) {
            int64_t bs = get_off(out->boundary_offsets, out->bnd_off_kind,
                                 source + 1)
                - get_off(out->boundary_offsets, out->bnd_off_kind, source);
            int64_t bt = get_off(inn->boundary_offsets, inn->bnd_off_kind,
                                 target + 1)
                - get_off(inn->boundary_offsets, inn->bnd_off_kind, target);
            if (bs > bt) {
                scan = inn;
                probe = out;
                sowner = target;
                powner = source;
            }
        } else if (kernel == K_FULL_SMALLER) {
            int64_t ms = get_off(out->member_offsets, out->mem_off_kind,
                                 source + 1)
                - get_off(out->member_offsets, out->mem_off_kind, source);
            int64_t mt = get_off(inn->member_offsets, inn->mem_off_kind,
                                 target + 1)
                - get_off(inn->member_offsets, inn->mem_off_kind, target);
            if (ms > mt) {
                scan = inn;
                probe = out;
                sowner = target;
                powner = source;
            }
        }

        {
            double best;
            int64_t witness;
            int64_t lo, hi;
            if (full) {
                lo = get_off(scan->member_offsets, scan->mem_off_kind, sowner);
                hi = get_off(
                    scan->member_offsets, scan->mem_off_kind, sowner + 1);
                probes += hi - lo;
                witness = intersect_slice(
                    probe, powner, scan, sowner,
                    scan->member_nodes, scan->id_kind, NULL, 0,
                    lo, hi, stamp, spos, epoch_io, &best);
            } else {
                lo = get_off(
                    scan->boundary_offsets, scan->bnd_off_kind, sowner);
                hi = get_off(
                    scan->boundary_offsets, scan->bnd_off_kind, sowner + 1);
                probes += hi - lo;
                witness = intersect_slice(
                    probe, powner, NULL, 0,
                    scan->boundary_nodes, scan->id_kind,
                    scan->boundary_dists, scan->dist_kind,
                    lo, hi, stamp, spos, epoch_io, &best);
            }
            *probes_out = probes;
            if (witness < 0)
                return M_MISS;
            *dist_out = best;
            *witness_out = witness;
            return M_INTERSECTION;
        }
    }
}
