"""Compile the C kernels into a ctypes-loadable shared library.

The extension is deliberately *not* a CPython extension module — it is
a plain shared object with no Python.h or numpy C-API dependency, so
building it needs nothing beyond a C compiler:

    python -m repro.core._native.build

``setup.py`` runs the same function during ``build_py`` (best-effort:
a missing compiler degrades the install to pure Python, it never fails
it), and CI invokes the module form before the native-tier test runs.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import sysconfig
from pathlib import Path

HERE = Path(__file__).resolve().parent

#: Source and output names; the loader globs ``LIB_STEM*`` with the
#: platform shared-library suffix next to this file.
SOURCE = "kernels.c"
LIB_STEM = "_kernels"


def lib_suffix() -> str:
    """The platform's shared-library suffix (``.so``/``.dylib``/``.dll``)."""
    if sys.platform == "win32":  # pragma: no cover - not a target platform
        return ".dll"
    if sys.platform == "darwin":
        return ".dylib"
    return ".so"


def lib_path(package_dir: Path = HERE) -> Path:
    """Where :func:`build` puts the compiled library."""
    return package_dir / f"{LIB_STEM}{lib_suffix()}"


def find_compiler() -> str | None:
    """A usable C compiler: ``$CC``, the interpreter's, or a common name."""
    candidates = [os.environ.get("CC"), sysconfig.get_config_var("CC")]
    candidates.extend(["cc", "gcc", "clang"])
    for candidate in candidates:
        if not candidate:
            continue
        # CC config vars can carry flags ("gcc -pthread"); the command
        # is the first token.
        command = candidate.split()[0]
        if shutil.which(command):
            return command
    return None


def build(
    package_dir: Path = HERE, *, force: bool = False, verbose: bool = False
) -> Path:
    """Compile ``kernels.c`` into the package directory.

    Returns the library path; raises ``RuntimeError`` when no compiler
    is available or the compile fails (callers that must degrade
    gracefully — ``setup.py`` — catch it).
    """
    source = package_dir / SOURCE
    target = lib_path(package_dir)
    if not source.exists():
        raise RuntimeError(f"native kernel source not found: {source}")
    if target.exists() and not force:
        if target.stat().st_mtime >= source.stat().st_mtime:
            return target
    compiler = find_compiler()
    if compiler is None:
        raise RuntimeError(
            "no C compiler found (set $CC or install gcc/clang); "
            "the numpy kernel tier remains fully functional"
        )
    cmd = [
        compiler, "-O3", "-shared", "-fPIC", "-std=c99",
        str(source), "-o", str(target), "-lm",
    ]
    if verbose:
        print(" ".join(cmd))
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"native kernel build failed ({compiler}):\n{proc.stderr.strip()}"
        )
    return target


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--force", action="store_true", help="rebuild even if up to date"
    )
    args = parser.parse_args(argv)
    try:
        target = build(force=args.force, verbose=True)
    except RuntimeError as exc:
        print(f"native kernel build skipped: {exc}", file=sys.stderr)
        return 1
    print(f"built {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
