"""Memory accounting for the built data structure (§3.2).

The paper's headline memory claims are entry-counting arguments:
``4 sqrt(n)`` vicinity entries per node versus ``n`` per node for
all-pairs storage — a ``sqrt(n)/4`` saving (550x for LiveJournal).  The
report below reproduces that model exactly and *additionally* accounts
for what the paper's prose leaves out: boundary lists and the landmark
full tables, under an explicit bytes-per-entry cost model (one 32-bit
distance plus one 32-bit predecessor per entry, the C++ ``unordered_map``
payload the paper describes; container overhead is reported separately
as a measured CPython figure).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.core.index import VicinityIndex

#: Cost model: bytes per stored (distance, predecessor) payload.
BYTES_PER_ENTRY_WITH_PATHS = 8
#: Cost model: bytes per stored distance-only payload.
BYTES_PER_ENTRY_DISTANCE_ONLY = 4


@dataclass
class MemoryReport:
    """Entry counts and modelled bytes for every index component.

    Attributes:
        n / num_edges / num_landmarks: context.
        vicinity_entries: total stored vicinity entries (sum of
            ``|Gamma(u)|``; the paper's ``~ alpha * sqrt(n) * n``).
        boundary_entries: total boundary-list entries.
        table_entries: landmark full-table entries (``|L| * n`` in
            ``landmark_tables="full"`` mode, else 0).
        apsp_entries: ``n * (n - 1) / 2`` — the all-pairs strawman.
        adjacency_entries: ``2 m`` — the raw graph, for scale.
        bytes_per_entry: the modelled payload size used below.
        measured_container_bytes: CPython-measured bytes of the actual
            dict/list containers (sampled and extrapolated), so the
            interpreter overhead is visible rather than hidden.
    """

    n: int
    num_edges: int
    num_landmarks: int
    vicinity_entries: int
    boundary_entries: int
    table_entries: int
    apsp_entries: int
    adjacency_entries: int
    bytes_per_entry: int
    measured_container_bytes: int

    # ------------------------------------------------------------------
    # the paper's quantities
    # ------------------------------------------------------------------
    @property
    def entries_per_node(self) -> float:
        """Mean vicinity entries per node — the paper's ``4 sqrt(n)``."""
        return self.vicinity_entries / self.n if self.n else 0.0

    @property
    def apsp_ratio_vicinities_only(self) -> float:
        """APSP entries / vicinity entries — §3.2's ``sqrt(n)/4`` claim.

        This is the paper's own accounting (landmark tables excluded).
        """
        return self.apsp_entries / self.vicinity_entries if self.vicinity_entries else 0.0

    @property
    def apsp_ratio_total(self) -> float:
        """APSP entries / all stored entries — the honest total ratio."""
        total = self.total_entries
        return self.apsp_entries / total if total else 0.0

    @property
    def total_entries(self) -> int:
        """All stored entries: vicinities + boundaries + landmark tables."""
        return self.vicinity_entries + self.boundary_entries + self.table_entries

    @property
    def model_bytes(self) -> int:
        """Total bytes under the entry cost model."""
        # Boundary lists store bare node ids (4 bytes each).
        return (
            (self.vicinity_entries + self.table_entries) * self.bytes_per_entry
            + self.boundary_entries * 4
        )

    def summary(self) -> str:
        """Render the §3.2 comparison as text."""
        return (
            f"entries/node = {self.entries_per_node:.1f} "
            f"(APSP would need {self.n - 1})\n"
            f"vicinity entries = {self.vicinity_entries:,}; "
            f"boundary = {self.boundary_entries:,}; "
            f"landmark tables = {self.table_entries:,}\n"
            f"APSP ratio (paper accounting, vicinities only) = "
            f"{self.apsp_ratio_vicinities_only:.0f}x\n"
            f"APSP ratio (all components) = {self.apsp_ratio_total:.0f}x\n"
            f"model bytes = {self.model_bytes:,} "
            f"(measured CPython containers ~ {self.measured_container_bytes:,})"
        )


def _measure_container_bytes(index: VicinityIndex, sample: int = 256) -> int:
    """Estimate actual CPython container bytes by sampling vicinities."""
    non_landmarks = [
        u for u in range(index.n) if not index.landmarks.is_landmark[u]
    ]
    if not non_landmarks:
        return 0
    step = max(1, len(non_landmarks) // sample)
    picked = non_landmarks[::step]
    total = 0
    for u in picked:
        vic = index.vicinities[u]
        total += sys.getsizeof(vic.dist) + sys.getsizeof(vic.pred)
        total += sys.getsizeof(vic.boundary)
    scaled = int(total * (len(non_landmarks) / len(picked)))
    for table in index.tables.values():
        scaled += table.dist.nbytes
        if table.parent is not None:
            scaled += table.parent.nbytes
    return scaled


def memory_report(index: VicinityIndex) -> MemoryReport:
    """Account for every component of a built index."""
    vicinity_entries = 0
    boundary_entries = 0
    for u in range(index.n):
        vic = index.vicinities[u]
        vicinity_entries += vic.size
        boundary_entries += vic.boundary_size
    table_entries = len(index.tables) * index.n
    bytes_per_entry = (
        BYTES_PER_ENTRY_WITH_PATHS
        if index.config.store_paths
        else BYTES_PER_ENTRY_DISTANCE_ONLY
    )
    return MemoryReport(
        n=index.n,
        num_edges=index.graph.num_edges,
        num_landmarks=index.landmarks.size,
        vicinity_entries=vicinity_entries,
        boundary_entries=boundary_entries,
        table_entries=table_entries,
        apsp_entries=index.n * (index.n - 1) // 2,
        adjacency_entries=2 * index.graph.num_edges,
        bytes_per_entry=bytes_per_entry,
        measured_container_bytes=_measure_container_bytes(index),
    )
