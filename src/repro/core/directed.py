"""Directed extension of vicinity intersection (§5, research challenge 2).

The paper asks whether the approach extends to directed social networks
(Twitter-style follow graphs).  It does, for unweighted digraphs, with
the following construction:

* sample landmarks with probability proportional to total degree
  (in + out);
* give every node an **out-vicinity** — the forward ball grown until
  the nearest landmark *by forward distance*, plus its out-frontier —
  and an **in-vicinity**, the same construction on the reversed graph;
* answer ``d(s -> t)`` by intersecting ``Gamma_out(s)`` with
  ``Gamma_in(t)``.

Correctness mirrors Theorem 1.  In an unweighted digraph
``Gamma_out(s) = {v : d(s->v) <= r_out(s)}`` and
``Gamma_in(t) = {v : d(v->t) <= r_in(t)}`` exactly.  If some ``w`` lies
in both, then ``d(s->t) <= r_out(s) + r_in(t)``; walking the shortest
path from ``s``, the first node ``y`` with ``d(s->y) = r_out(s)``
satisfies ``d(y->t) = d(s->t) - r_out(s) <= r_in(t)``, so ``y`` is an
on-path member of the intersection and the minimum of
``d(s->w) + d(w->t)`` over the intersection is exact (every such sum is
an upper bound by the triangle inequality).  The boundary restriction
carries over: ``y``'s successor on the path falls outside
``Gamma_out(s)``, hence ``y`` is on the out-boundary.  Both facts are
property-tested in ``tests/core/test_directed.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.landmarks import flag_bytes
from repro.core.oracle import OracleCounters, QueryResult
from repro.exceptions import IndexBuildError, QueryError, UnreachableError
from repro.graph.digraph import DiGraph
from repro.graph.traversal.vectorized import digraph_bfs_tree_vectorized
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class DirectedVicinity:
    """One orientation's vicinity record (forward or reverse).

    ``dist[v]`` is ``d(node -> v)`` for the forward record and
    ``d(v -> node)`` for the reverse record; ``pred`` points one hop
    back toward ``node`` in the traversal orientation.
    """

    node: int
    radius: Optional[int]
    dist: dict[int, int]
    pred: dict[int, int]
    members: frozenset[int]
    boundary: list[int]

    @property
    def size(self) -> int:
        """Number of vicinity members."""
        return len(self.members)


@dataclass
class DirectedQueryResult(QueryResult):
    """Query outcome; identical shape to the undirected result."""


def _truncated_directed_ball(
    adj: list[list[int]],
    source: int,
    is_landmark: Sequence[int],
    max_size: Optional[int] = None,
    min_size: Optional[int] = None,
) -> tuple[Optional[int], dict[int, int], dict[int, int], list[int]]:
    """Level-synchronous forward ball on the given adjacency.

    Returns ``(radius, dist, pred, gamma)`` following Definition 1
    transposed to one traversal orientation.  ``max_size`` aborts
    oversized traversals during calibration; ``min_size`` keeps
    absorbing levels past the nearest landmark until the vicinity holds
    that many nodes (exact for unweighted digraphs — the correctness
    proof in the module docstring works for any per-node radius).
    """
    if is_landmark[source]:
        return 0, {source: 0}, {source: source}, []
    dist: dict[int, int] = {source: 0}
    pred: dict[int, int] = {source: source}
    levels: list[list[int]] = [[source]]
    frontier = [source]
    level = 0
    radius: Optional[int] = None
    landmark_seen = False
    while frontier:
        if max_size is not None and len(dist) > max_size:
            gamma = [v for lvl in levels for v in lvl]
            return None, dist, pred, gamma
        level += 1
        next_frontier = []
        for u in frontier:
            for v in adj[u]:
                if v not in dist:
                    dist[v] = level
                    pred[v] = u
                    next_frontier.append(v)
                    if is_landmark[v]:
                        landmark_seen = True
        if not next_frontier:
            break
        levels.append(next_frontier)
        frontier = next_frontier
        if landmark_seen and (min_size is None or len(dist) >= min_size):
            radius = level
            break
    gamma = [v for lvl in levels for v in lvl]
    return radius, dist, pred, gamma


def _side_table_map(store, ids: np.ndarray) -> dict:
    """``{landmark: (dist_row, parent_row)}`` views over stacked tables."""
    if not store["table_dist"].size:
        return {}
    return {
        landmark: (store["table_dist"][row], store["table_parent"][row])
        for row, landmark in enumerate(ids.tolist())
    }


def _directed_boundary(
    gamma: Sequence[int], member_set: frozenset[int], adj: list[list[int]]
) -> list[int]:
    """Members with at least one same-orientation neighbour outside."""
    boundary = []
    for v in gamma:
        for w in adj[v]:
            if w not in member_set:
                boundary.append(v)
                break
    return boundary


class DirectedVicinityOracle:
    """Exact ``d(s -> t)`` queries on unweighted digraphs.

    Build with :meth:`build`.  The per-node cost doubles relative to the
    undirected oracle (two vicinities per node, two tables per
    landmark) — the price §5 anticipates for directed support.
    """

    def __init__(
        self,
        graph: DiGraph,
        alpha: float,
        landmark_ids: np.ndarray,
        is_landmark: bytearray,
        out_vicinities: list[DirectedVicinity],
        in_vicinities: list[DirectedVicinity],
        forward_tables: dict[int, tuple[np.ndarray, np.ndarray]],
        backward_tables: dict[int, tuple[np.ndarray, np.ndarray]],
        fallback: str = "bidirectional",
    ) -> None:
        self.graph = graph
        self.alpha = alpha
        self.landmark_ids = landmark_ids
        self.is_landmark = is_landmark
        self.out_vicinities = out_vicinities
        self.in_vicinities = in_vicinities
        self.forward_tables = forward_tables
        self.backward_tables = backward_tables
        self.fallback = fallback
        self.counters = OracleCounters()
        self._engine = None
        #: Store-layout side arrays when built flat-natively or loaded
        #: from disk (``None`` for dict builds until first flatten).
        self._flat_sides = None

    # ------------------------------------------------------------------
    # offline phase
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: DiGraph,
        *,
        alpha: float = 4.0,
        seed: RngLike = None,
        probability_scale="auto",
        fallback: str = "bidirectional",
        vicinity_floor: float = 0.0,
        representation: str = "dict",
    ) -> "DirectedVicinityOracle":
        """Run the directed offline phase.

        ``probability_scale="auto"`` calibrates the landmark-sampling
        scale so that mean out-vicinity size meets ``alpha * sqrt(n)``,
        mirroring the undirected oracle.  ``representation="flat"``
        runs both orientations through the batched flat-native pipeline
        (:func:`repro.core.parallel.build_directed_side_store`): the
        engine's two sides come straight out of the build, so the first
        query pays no flattening pass and no per-node record is ever
        materialised.

        Raises:
            IndexBuildError: for empty or weighted digraphs (the
                directed extension is defined for the paper's unweighted
                setting).
        """
        if graph.n == 0:
            raise IndexBuildError("cannot build an index over an empty digraph")
        if graph.is_weighted:
            raise IndexBuildError("the directed extension supports unweighted digraphs")
        if representation not in ("dict", "flat"):
            raise IndexBuildError(
                f"unknown representation {representation!r}; "
                "choose from ('dict', 'flat')"
            )
        rng = ensure_rng(seed)
        total = graph.total_degrees().astype(np.float64)
        if probability_scale == "auto":
            probability_scale = cls._calibrate(graph, alpha, total, rng)
        probabilities = np.minimum(
            1.0, probability_scale * total / (alpha * np.sqrt(graph.n))
        )
        sampled = rng.random(graph.n) < probabilities
        if not sampled.any():
            sampled[int(np.argmax(total))] = True
        ids = np.flatnonzero(sampled).astype(np.int64)
        flags = flag_bytes(graph.n, ids)

        min_size = None
        if vicinity_floor > 0:
            min_size = int(vicinity_floor * alpha * np.sqrt(graph.n))

        if representation == "flat":
            return cls._build_flat(graph, alpha, ids, flags, min_size, fallback)

        out_adj = graph.out_adjacency()
        in_adj = graph.in_adjacency()
        out_vicinities = cls._build_side(out_adj, flags, graph.n, min_size)
        in_vicinities = cls._build_side(in_adj, flags, graph.n, min_size)

        forward_tables: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        backward_tables: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for landmark in ids.tolist():
            forward_tables[landmark] = digraph_bfs_tree_vectorized(
                graph.out_indptr, graph.out_indices, graph.n, landmark
            )
            backward_tables[landmark] = digraph_bfs_tree_vectorized(
                graph.in_indptr, graph.in_indices, graph.n, landmark
            )
        return cls(
            graph, alpha, ids, flags, out_vicinities, in_vicinities,
            forward_tables, backward_tables, fallback,
        )

    @classmethod
    def _build_flat(cls, graph, alpha, ids, flags, min_size, fallback):
        """Flat-native directed build: both sides straight to arrays."""
        from repro.core.parallel import build_directed_side_store

        flags_u8 = np.frombuffer(flags, dtype=np.uint8)
        out_store = build_directed_side_store(
            graph.out_indptr, graph.out_indices, graph.n, flags_u8, ids,
            min_size=min_size,
        )
        in_store = build_directed_side_store(
            graph.in_indptr, graph.in_indices, graph.n, flags_u8, ids,
            min_size=min_size,
        )
        oracle = cls.from_side_stores(
            graph, alpha, ids, flags, out_store, in_store, fallback
        )
        return oracle

    @classmethod
    def from_side_stores(
        cls, graph, alpha, ids, flags, out_store, in_store, fallback
    ) -> "DirectedVicinityOracle":
        """Assemble an oracle from two store-layout side dicts.

        Used by the flat-native builder and the persistence layer
        (:func:`repro.io.oracle_store.load_directed_oracle`).  The
        record API stays available through lazy per-node views; the
        tables map exposes stacked-row views so diagnostics keep
        working dict-free.
        """
        from repro.core.index import FlatVicinityList

        out_vicinities = FlatVicinityList(out_store, graph.n, weighted=False)
        in_vicinities = FlatVicinityList(in_store, graph.n, weighted=False)
        forward_tables = _side_table_map(out_store, ids)
        backward_tables = _side_table_map(in_store, ids)
        oracle = cls(
            graph, alpha, ids, flags, out_vicinities, in_vicinities,
            forward_tables, backward_tables, fallback,
        )
        oracle._flat_sides = (out_store, in_store)
        return oracle

    @staticmethod
    def _calibrate(
        graph: DiGraph, alpha: float, total: np.ndarray, rng
    ) -> float:
        """Tune the sampling scale so mean out-vicinity size hits
        ``alpha * sqrt(n)`` (directed analogue of
        :func:`repro.core.landmarks.calibrate_scale`)."""
        n = graph.n
        if n < 3 or graph.num_arcs == 0:
            return 1.0
        target = float(min(alpha * np.sqrt(n), max(4.0, n / 2.0)))
        out_adj = graph.out_adjacency()
        candidates = np.flatnonzero(total > 0)
        if candidates.size == 0:
            return 1.0
        scale = 1.0
        limit = int(max(8 * target, 64))
        for _ in range(8):
            probabilities = np.minimum(1.0, scale * total / (alpha * np.sqrt(n)))
            flags_array = rng.random(n) < probabilities
            if not flags_array.any():
                flags_array[int(np.argmax(total))] = True
            flags = bytearray(flags_array.astype(np.uint8))
            probes = rng.choice(candidates, size=min(24, candidates.size), replace=False)
            sizes = []
            for u in probes.tolist():
                if flags[u]:
                    sizes.append(target)
                    continue
                _r, dist, _p, gamma = _truncated_directed_ball(
                    out_adj, int(u), flags, max_size=limit
                )
                sizes.append(float(min(len(gamma), limit)))
            mean_size = float(np.mean(sizes)) if sizes else target
            ratio = mean_size / target
            if abs(ratio - 1.0) <= 0.15:
                break
            scale = float(np.clip(scale * ratio**0.85, 1e-4, 256.0))
        return scale

    @staticmethod
    def _build_side(
        adj: list[list[int]], flags: bytearray, n: int, min_size=None
    ) -> list[DirectedVicinity]:
        vicinities = []
        for u in range(n):
            if flags[u]:
                vicinities.append(
                    DirectedVicinity(u, 0, {}, {}, frozenset(), [])
                )
                continue
            radius, dist, pred, gamma = _truncated_directed_ball(
                adj, u, flags, min_size=min_size
            )
            member_set = frozenset(gamma)
            boundary = _directed_boundary(gamma, member_set, adj)
            vicinities.append(
                DirectedVicinity(u, radius, dist, pred, member_set, boundary)
            )
        return vicinities

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def flat_side_stores(self) -> tuple[dict, dict]:
        """Both orientations as persistence-layout arrays (cached).

        A flat-built or disk-loaded oracle already holds them; a
        dict-built oracle pays one flattening pass on first use (then
        never again — this is also what the engine builds its sides
        from, and what :func:`repro.io.oracle_store.save_directed_oracle`
        persists).
        """
        if self._flat_sides is None:
            from repro.core.flat import directed_side_store_arrays

            self._flat_sides = (
                directed_side_store_arrays(
                    self.out_vicinities, self.landmark_ids,
                    self.forward_tables, self.graph.n,
                ),
                directed_side_store_arrays(
                    self.in_vicinities, self.landmark_ids,
                    self.backward_tables, self.graph.n,
                ),
            )
        return self._flat_sides

    @property
    def engine(self):
        """The two-sided flat engine the directed read path runs on.

        The out-vicinities and forward tables form the engine's
        *source* side, the in-vicinities and backward tables its
        *target* side; the shared
        :class:`~repro.core.engine.FlatQueryEngine` then runs the exact
        directed analogue of Algorithm 1 (boundary-smaller scan over
        the two orientations).  Built on the first query; flat-built
        and disk-loaded oracles reuse their stored arrays directly, so
        only a dict-built oracle ever pays a flattening pass here.
        """
        if self._engine is None:
            from repro.core.engine import FlatQueryEngine
            from repro.core.flat import directed_side_flat_index

            out_store, in_store = self.flat_side_stores()
            self._engine = FlatQueryEngine(
                directed_side_flat_index(out_store, self.graph.n),
                directed_side_flat_index(in_store, self.graph.n),
                kernel="boundary-smaller",
                result_cls=DirectedQueryResult,
            )
        return self._engine

    def distance(self, source: int, target: int) -> Optional[int]:
        """Return ``d(source -> target)`` or ``None`` when unanswerable."""
        return self.query(source, target).distance

    def path(self, source: int, target: int) -> list[int]:
        """Return one shortest directed path ``source .. target``."""
        result = self.query(source, target, with_path=True)
        if result.method == "disconnected":
            raise UnreachableError(source, target)
        if result.path is None:
            raise QueryError(f"no path available for ({source}, {target})")
        return result.path

    def query(
        self, source: int, target: int, *, with_path: bool = False
    ) -> DirectedQueryResult:
        """Run the directed analogue of Algorithm 1 (on the flat engine)."""
        self.graph.check_node(source)
        self.graph.check_node(target)
        result = self.engine.resolve(int(source), int(target), with_path)
        if result.method == "miss" and self.fallback != "none":
            result = self._fallback(source, target, result.probes, with_path)
        self.counters.record(result)
        return result

    def query_batch(
        self, pairs, *, with_path: bool = False
    ) -> list[DirectedQueryResult]:
        """Answer many ``(source, target)`` pairs, in input order.

        The directed counterpart of
        :meth:`~repro.core.oracle.VicinityOracle.query_batch` — the
        same fused engine lanes over the two orientations — making the
        oracle a valid serving-layer backend
        (``BatchExecutor(..., symmetry=False)`` with
        ``ResultCache(symmetric=False)`` — ``d(s -> t)`` and
        ``d(t -> s)`` differ, so orientations must stay distinct).
        """
        from repro.core.engine import run_query_batch

        return run_query_batch(
            self.engine,
            pairs,
            with_path,
            check_node=self.graph.check_node,
            fallback=self._fallback if self.fallback != "none" else None,
            record=self.counters.record,
        )

    def _fallback(
        self, source: int, target: int, probes: int, with_path: bool
    ) -> DirectedQueryResult:
        if self.fallback == "none":
            return DirectedQueryResult(source, target, None, None, "miss", None, probes)
        outcome = directed_bidirectional_bfs(self.graph, source, target, with_path)
        if outcome is None:
            return DirectedQueryResult(
                source, target, None, None, "disconnected", None, probes
            )
        distance, path = outcome
        return DirectedQueryResult(
            source, target, distance, path, "fallback", None, probes
        )


def directed_bidirectional_bfs(
    graph: DiGraph, source: int, target: int, with_path: bool = False
) -> Optional[tuple[int, Optional[list[int]]]]:
    """Bidirectional BFS on a digraph: forward from ``source``, backward
    from ``target``.

    Returns ``(distance, path-or-None)`` or ``None`` when no directed
    path exists.
    """
    if source == target:
        return 0, ([source] if with_path else None)
    out_adj = graph.out_adjacency()
    in_adj = graph.in_adjacency()
    dist_f: dict[int, int] = {source: 0}
    dist_b: dict[int, int] = {target: 0}
    parent_f: dict[int, int] = {source: source}
    parent_b: dict[int, int] = {target: target}
    frontier_f = [source]
    frontier_b = [target]
    level_f = level_b = 0
    mu = float("inf")
    meet: Optional[int] = None
    while frontier_f and frontier_b:
        if mu <= level_f + level_b:
            break
        if len(frontier_f) <= len(frontier_b):
            frontier, adj, dist_mine, dist_other, parent = (
                frontier_f, out_adj, dist_f, dist_b, parent_f,
            )
            level_f += 1
            level = level_f
        else:
            frontier, adj, dist_mine, dist_other, parent = (
                frontier_b, in_adj, dist_b, dist_f, parent_b,
            )
            level_b += 1
            level = level_b
        next_frontier = []
        for u in frontier:
            for v in adj[u]:
                if v not in dist_mine:
                    dist_mine[v] = level
                    parent[v] = u
                    next_frontier.append(v)
                    other = dist_other.get(v)
                    if other is not None and level + other < mu:
                        mu = level + other
                        meet = v
        if dist_mine is dist_f:
            frontier_f = next_frontier
        else:
            frontier_b = next_frontier
    if meet is None:
        return None
    path = None
    if with_path:
        forward = [meet]
        node = meet
        while node != source:
            node = parent_f[node]
            forward.append(node)
        forward.reverse()
        node = meet
        while node != target:
            node = parent_b[node]
            forward.append(node)
        path = forward
    return int(mu), path
