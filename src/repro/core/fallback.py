"""Fallback queries for non-intersecting vicinity pairs (footnote 1).

The paper observes that pairs whose vicinities miss can be handed to an
exact online algorithm.  We use bidirectional search — the strongest
exact baseline in Table 3 — so an oracle configured with
``fallback="bidirectional"`` is *always exact* and only pays online
search cost on the <0.1 % of pairs (at alpha = 4) that miss.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.graph.csr import CSRGraph
from repro.graph.traversal.bidirectional import (
    bidirectional_bfs,
    bidirectional_bfs_path,
    bidirectional_dijkstra,
)
from repro.graph.traversal.dijkstra import dijkstra_path


def fallback_distance(graph: CSRGraph, source: int, target: int) -> Optional[float]:
    """Exact online distance via bidirectional search (``None`` if disconnected)."""
    if graph.is_weighted:
        return bidirectional_dijkstra(graph, source, target)
    return bidirectional_bfs(graph, source, target)


def fallback_path(
    graph: CSRGraph, source: int, target: int
) -> Tuple[Optional[float], Optional[list[int]]]:
    """Exact online distance *and* path via the strongest exact baseline.

    Returns ``(None, None)`` when the endpoints are disconnected.
    """
    if graph.is_weighted:
        distance = bidirectional_dijkstra(graph, source, target)
        if distance is None:
            return None, None
        return distance, dijkstra_path(graph, source, target)
    distance = bidirectional_bfs(graph, source, target)
    if distance is None:
        return None, None
    return distance, bidirectional_bfs_path(graph, source, target)
