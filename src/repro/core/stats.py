"""Structural statistics of a built index (the Figure 2 quantities).

Figure 2 characterises vicinities along three axes — intersection rate,
boundary size, and radius.  :class:`IndexStats` extracts the per-node
raw material (sizes, boundary sizes, radii) from a built
:class:`~repro.core.index.VicinityIndex`; the experiment drivers in
:mod:`repro.experiments.figure2` aggregate it into the paper's curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.index import VicinityIndex


@dataclass
class IndexStats:
    """Per-node structural arrays plus the headline aggregates.

    All arrays cover *non-landmark* nodes only (landmarks have empty
    vicinities by Definition 1 and would skew the distributions the
    paper plots over "sampled nodes").
    """

    n: int
    num_edges: int
    num_landmarks: int
    alpha: float
    vicinity_sizes: np.ndarray
    boundary_sizes: np.ndarray
    radii: np.ndarray

    @classmethod
    def from_index(cls, index: VicinityIndex) -> "IndexStats":
        """Extract statistics from a built index."""
        sizes: list[int] = []
        boundaries: list[int] = []
        radii: list[float] = []
        flags = index.landmarks.is_landmark
        for u in range(index.n):
            if flags[u]:
                continue
            vic = index.vicinities[u]
            sizes.append(vic.size)
            boundaries.append(vic.boundary_size)
            radii.append(float(vic.radius) if vic.radius is not None else np.nan)
        return cls(
            n=index.n,
            num_edges=index.graph.num_edges,
            num_landmarks=index.landmarks.size,
            alpha=index.config.alpha,
            vicinity_sizes=np.asarray(sizes, dtype=np.int64),
            boundary_sizes=np.asarray(boundaries, dtype=np.int64),
            radii=np.asarray(radii, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # headline aggregates
    # ------------------------------------------------------------------
    @property
    def expected_vicinity_size(self) -> float:
        """The paper's target ``alpha * sqrt(n)``."""
        return float(self.alpha * np.sqrt(self.n))

    @property
    def mean_vicinity_size(self) -> float:
        """Mean ``|Gamma(u)|`` over non-landmark nodes."""
        return float(self.vicinity_sizes.mean()) if self.vicinity_sizes.size else 0.0

    @property
    def mean_boundary_size(self) -> float:
        """Mean ``|boundary(u)|`` over non-landmark nodes."""
        return float(self.boundary_sizes.mean()) if self.boundary_sizes.size else 0.0

    @property
    def max_boundary_fraction(self) -> float:
        """Worst-case boundary size as a fraction of ``n`` (Fig. 2b claim)."""
        if not self.boundary_sizes.size or self.n == 0:
            return 0.0
        return float(self.boundary_sizes.max()) / self.n

    @property
    def mean_radius(self) -> float:
        """Mean vicinity radius ``d(u, l(u))`` (Fig. 2c), ignoring NaNs."""
        finite = self.radii[~np.isnan(self.radii)]
        return float(finite.mean()) if finite.size else 0.0

    def boundary_cdf(self, points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(x, F(x))`` for the boundary-size/n CDF (Fig. 2b).

        ``x`` are boundary sizes as fractions of ``n``; ``F`` their
        cumulative frequencies.
        """
        if not self.boundary_sizes.size or self.n == 0:
            return np.zeros(0), np.zeros(0)
        fractions = np.sort(self.boundary_sizes) / self.n
        cumulative = np.arange(1, fractions.size + 1) / fractions.size
        if fractions.size <= points:
            return fractions, cumulative
        picks = np.linspace(0, fractions.size - 1, points).astype(np.int64)
        return fractions[picks], cumulative[picks]

    def summary(self) -> str:
        """Render a short human-readable report."""
        return (
            f"n={self.n:,} m={self.num_edges:,} |L|={self.num_landmarks:,} "
            f"alpha={self.alpha:g}\n"
            f"vicinity size: mean={self.mean_vicinity_size:.1f} "
            f"(target alpha*sqrt(n)={self.expected_vicinity_size:.1f}) "
            f"max={int(self.vicinity_sizes.max()) if self.vicinity_sizes.size else 0}\n"
            f"boundary size: mean={self.mean_boundary_size:.1f} "
            f"worst-case fraction of n={self.max_boundary_fraction:.4%}\n"
            f"radius: mean={self.mean_radius:.2f} hops"
        )
