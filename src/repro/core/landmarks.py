"""Degree-proportional landmark sampling (§2.2).

Each node ``u`` enters the landmark set ``L`` independently with
probability proportional to its degree.  Intuition (§2.1): a node with a
dense neighbourhood almost surely has a high-degree neighbour, that
neighbour is almost surely a landmark, and the ball of the dense node
therefore stops expanding after one hop — bounding vicinity sizes
exactly where fixed-radius vicinities would explode.

Probability formula.  We use ``p(u) = min(1, scale * deg(u) / (alpha * sqrt(n)))``.
With ``scale = 1`` a ball's expansion stops, in expectation, once the
*edge mass* it has absorbed reaches ``alpha * sqrt(n)`` — since
``Gamma(u) = B(u) ∪ N(B(u))`` is bounded by that edge mass, the expected
vicinity size is at most ``alpha * sqrt(n)``, matching §2.2's claim.
The paper's displayed formula, read literally, is
``p(u) = (m / (alpha * n * sqrt(n))) * (2n / m) * deg(u) = 2 deg(u) / (alpha sqrt(n))``,
i.e. ``scale = 2``; the ``probability_scale`` config knob selects either
reading (ablation A3 sweeps it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import IndexBuildError
from repro.graph.components import connected_components
from repro.graph.csr import CSRGraph
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class LandmarkSet:
    """The sampled landmark set ``L`` plus fast membership flags.

    Attributes:
        ids: sorted landmark node ids.
        is_landmark: per-node truthy flags (``bytearray`` of length n),
            the representation the truncated traversals index directly.
        probabilities: the per-node sampling probability used, retained
            for diagnostics and the ablation benchmarks.
        alpha: the alpha the probabilities were derived from.
        scale: the (possibly calibrated) probability scale in effect.
        forced: ids that were force-included (per-component guarantee or
            empty-sample rescue) rather than sampled.
    """

    ids: np.ndarray
    is_landmark: bytearray
    probabilities: np.ndarray
    alpha: float
    forced: np.ndarray
    scale: float = 1.0

    def __len__(self) -> int:
        return int(self.ids.size)

    def __contains__(self, node: int) -> bool:
        return bool(self.is_landmark[node])

    @property
    def size(self) -> int:
        """Number of landmarks ``|L|``."""
        return int(self.ids.size)

    def expected_size(self) -> float:
        """Expected ``|L|`` under the sampling probabilities."""
        return float(self.probabilities.sum())


def flag_bytes(n: int, ids: np.ndarray) -> bytearray:
    """Per-node membership flags as a ``bytearray``, via one numpy scatter.

    The scalar traversal loops index the flags per neighbour, where a
    ``bytearray`` iterates unboxed; building it element-by-element in
    Python, however, costs a loop over ``|L|`` — one ``uint8`` scatter
    plus a buffer copy replaces it.
    """
    flags = np.zeros(n, dtype=np.uint8)
    flags[np.asarray(ids, dtype=np.int64)] = 1
    return bytearray(flags)


def sampling_probabilities(
    graph: CSRGraph, alpha: float, *, scale: float = 1.0
) -> np.ndarray:
    """Return the per-node landmark sampling probability vector.

    ``p(u) = min(1, scale * deg(u) / (alpha * sqrt(n)))`` — degree
    proportional, capped at 1.
    """
    if alpha <= 0:
        raise IndexBuildError("alpha must be positive")
    if scale <= 0:
        raise IndexBuildError("scale must be positive")
    if graph.n == 0:
        return np.zeros(0, dtype=np.float64)
    degrees = graph.degrees().astype(np.float64)
    return np.minimum(1.0, scale * degrees / (alpha * np.sqrt(graph.n)))


def sample_landmarks(
    graph: CSRGraph,
    alpha: float,
    *,
    rng: RngLike = None,
    scale: float = 1.0,
    per_component: bool = True,
    max_landmarks: Optional[int] = None,
) -> LandmarkSet:
    """Sample the landmark set ``L`` (§2.2, first step).

    Args:
        graph: the network.
        alpha: vicinity-size parameter.
        rng: seed or generator for reproducible sampling.
        scale: multiplier on the probability (see module docstring).
        per_component: force the highest-degree node of any component
            that sampled no landmark, so no ball can degenerate to a
            whole component.
        max_landmarks: optional hard cap; when the sample exceeds it the
            highest-degree landmarks are kept (forced ids always
            survive the cap).

    Returns:
        The :class:`LandmarkSet`.

    Raises:
        IndexBuildError: for a graph with zero nodes.
    """
    if graph.n == 0:
        raise IndexBuildError("cannot sample landmarks on an empty graph")
    generator = ensure_rng(rng)
    probabilities = sampling_probabilities(graph, alpha, scale=scale)
    sampled = generator.random(graph.n) < probabilities
    forced: list[int] = []

    if per_component:
        labels, count = connected_components(graph)
        has_landmark = np.zeros(count, dtype=bool)
        hit = np.unique(labels[sampled]) if sampled.any() else np.zeros(0, np.int64)
        has_landmark[hit] = True
        if not has_landmark.all():
            degrees = graph.degrees()
            for comp in np.flatnonzero(~has_landmark):
                members = np.flatnonzero(labels == comp)
                best = int(members[np.argmax(degrees[members])])
                sampled[best] = True
                forced.append(best)
    elif not sampled.any():
        # Degenerate rescue: an empty L makes every vicinity the whole
        # graph, so always keep at least the global max-degree node.
        best = int(np.argmax(graph.degrees()))
        sampled[best] = True
        forced.append(best)

    ids = np.flatnonzero(sampled).astype(np.int64)
    if max_landmarks is not None and ids.size > max_landmarks:
        degrees = graph.degrees()
        forced_set = set(forced)
        order = sorted(
            ids.tolist(), key=lambda u: (u not in forced_set, -int(degrees[u]))
        )
        keep = max(max_landmarks, len(forced))
        ids = np.asarray(sorted(order[:keep]), dtype=np.int64)

    return LandmarkSet(
        ids=ids,
        is_landmark=flag_bytes(graph.n, ids),
        probabilities=probabilities,
        alpha=float(alpha),
        forced=np.asarray(sorted(forced), dtype=np.int64),
        scale=float(scale),
    )


def calibrate_scale(
    graph: CSRGraph,
    alpha: float,
    *,
    rng: RngLike = None,
    sample_nodes: int = 24,
    max_iterations: int = 8,
    tolerance: float = 0.15,
) -> float:
    """Tune ``probability_scale`` so mean ``|Gamma(u)|`` hits ``alpha*sqrt(n)``.

    The paper states its claims in terms of vicinity *size* —
    "vicinities of size roughly c * sqrt(n)" (§1), "roughly 4 sqrt(n)
    memory per node" (§3.2) — while the displayed sampling constant is
    derived for the authors' full-scale crawls.  On other graphs (and
    at other scales) the same constant produces balls whose node count
    departs from ``alpha * sqrt(n)`` because level granularity and the
    degree tail enter the stopping condition.  This routine closes the
    loop empirically: it probes truncated balls from a node sample and
    multiplicatively adjusts the scale until the measured mean size
    matches the paper's target (see DESIGN.md, substitutions).

    Args:
        graph: the network.
        alpha: vicinity-size parameter.
        rng: seed or generator (calibration draws are independent of
            the final sampling draw).
        sample_nodes: how many ball probes per iteration.
        max_iterations: search budget.
        tolerance: acceptable relative error on the mean size.

    Returns:
        The calibrated scale (clamped to ``[1e-4, 256]``).
    """
    if graph.n < 3 or graph.num_edges == 0:
        return 1.0
    generator = ensure_rng(rng)
    target = float(min(alpha * np.sqrt(graph.n), max(4.0, graph.n / 2.0)))
    limit = int(max(8 * target, 64))
    scale = 1.0
    degrees = graph.degrees()
    candidates = np.flatnonzero(degrees > 0)
    if candidates.size == 0:
        return 1.0
    # Local import: bounded depends only on the graph package, but
    # importing at module top would be unused on the non-auto path.
    from repro.graph.traversal.bounded import truncated_bfs_ball

    for _ in range(max_iterations):
        probabilities = sampling_probabilities(graph, alpha, scale=scale)
        flags_array = generator.random(graph.n) < probabilities
        if not flags_array.any():
            flags_array[int(np.argmax(degrees))] = True
        flags = bytearray(flags_array.astype(np.uint8))
        probes = generator.choice(candidates, size=min(sample_nodes, candidates.size), replace=False)
        sizes = []
        for u in probes.tolist():
            if flags[u]:
                # A landmark probe carries no size signal; use the target
                # itself so it neither inflates nor deflates the mean.
                sizes.append(target)
                continue
            result = truncated_bfs_ball(graph, int(u), flags, max_size=limit)
            sizes.append(float(len(result.gamma)))
        mean_size = float(np.mean(sizes)) if sizes else target
        ratio = mean_size / target
        if abs(ratio - 1.0) <= tolerance:
            break
        # Ball mass scales roughly inversely with the sampling scale;
        # a damped multiplicative step converges in a few iterations.
        scale = float(np.clip(scale * ratio**0.85, 1e-4, 256.0))
    return scale


def landmark_set_from_ids(graph: CSRGraph, ids: Sequence[int], alpha: float) -> LandmarkSet:
    """Build a :class:`LandmarkSet` from explicit node ids.

    Used by persistence (rebuilding an oracle with the exact landmark
    set it was saved with) and by tests that need hand-placed landmarks.
    """
    arr = np.asarray(sorted(set(int(u) for u in ids)), dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= graph.n):
        raise IndexBuildError("landmark ids reference unknown nodes")
    return LandmarkSet(
        ids=arr,
        is_landmark=flag_bytes(graph.n, arr),
        probabilities=sampling_probabilities(graph, alpha),
        alpha=float(alpha),
        forced=np.zeros(0, dtype=np.int64),
    )
