"""The online phase: Algorithm 1 over a built :class:`VicinityIndex`.

Query resolution order, exactly as §3.1 prescribes:

1. ``s == t``                         -> distance 0;
2. ``s ∈ L``  (full table at ``s``)   -> direct lookup;
3. ``t ∈ L``  (full table at ``t``)   -> direct lookup;
4. ``t ∈ Gamma(s)``                   -> stored vicinity entry;
5. ``s ∈ Gamma(t)``                   -> stored vicinity entry;
6. vicinity intersection over boundary nodes (Theorem 1 + Lemma 1);
7. configured fallback (footnote 1) or a reported miss.

Every membership/table probe is counted so Table 3's hash-look-up
column can be reproduced hardware-independently.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.config import OracleConfig
from repro.core.fallback import fallback_distance, fallback_path
from repro.core.index import VicinityIndex
from repro.core.memory import MemoryReport, memory_report
from repro.core.stats import IndexStats
from repro.exceptions import QueryError, UnreachableError
from repro.graph.csr import CSRGraph

Distance = Union[int, float]

#: Resolution methods, in Algorithm 1 order.  This tuple is the single
#: authoritative list of method names; downstream code (the serving
#: layer, caches, telemetry) must reference these constants rather than
#: re-listing the strings.
METHODS = (
    "identical",
    "landmark-source",
    "landmark-target",
    "target-in-source-vicinity",
    "source-in-target-vicinity",
    "intersection",
    "fallback",
    "miss",
    "disconnected",
    # Not an Algorithm 1 stage: a degraded answer from the landmark
    # triangulation upper bound, produced when the serving layer cannot
    # reach a shard (circuit breaker open) or sheds load.  Lives in the
    # authoritative tuple so wire codes, caches and telemetry treat it
    # like any other method; appended last so the codes of the real
    # resolution stages never move.
    "estimate",
)

#: Method-name <-> uint8 wire codes, derived from the METHODS order.
#: Shared by the wire frames and the column-native shard worker lane so
#: the encoder and the engine can never disagree on a code.
METHOD_CODE = {name: code for code, name in enumerate(METHODS)}
METHOD_NAME = dict(enumerate(METHODS))

#: Methods that resolve in O(1) table probes — conditions (1)-(4) of
#: Algorithm 1 plus the trivial same-node case.  Re-answering these is
#: as cheap as a cache hit, so the serving layer does not cache them.
CHEAP_METHODS = (
    "identical",
    "landmark-source",
    "landmark-target",
    "target-in-source-vicinity",
    "source-in-target-vicinity",
)

#: Methods that pay for a boundary scan (intersection) or a graph
#: search (fallback) — the expensive tail worth caching.  ``miss`` and
#: ``disconnected`` belong here because discovering either costs a full
#: failed scan.
EXPENSIVE_METHODS = (
    "intersection",
    "fallback",
    "miss",
    "disconnected",
)


@dataclass
class QueryResult:
    """Outcome of one point-to-point query.

    Attributes:
        source / target: the queried pair.
        distance: exact distance, or ``None`` when the oracle could not
            answer (``method == "miss"``) or the pair is disconnected.
        path: node sequence ``source .. target`` when requested and
            available.
        method: which stage of Algorithm 1 resolved the query (one of
            :data:`METHODS`).
        witness: the intersection node ``w`` minimising
            ``d(s, w) + d(w, t)`` when ``method == "intersection"``.
        probes: hash-table look-ups performed (Table 3's cost metric).
    """

    source: int
    target: int
    distance: Optional[Distance]
    path: Optional[list[int]] = None
    method: str = "miss"
    witness: Optional[int] = None
    probes: int = 0

    @property
    def answered(self) -> bool:
        """Whether an exact distance was produced."""
        return self.distance is not None

    def mirrored(self) -> "QueryResult":
        """Return this result reoriented as an answer to ``(target, source)``.

        On an undirected graph ``d(s, t) == d(t, s)``, so a resolved
        pair answers its mirror for free.  The serving layer uses this
        for symmetry deduplication and cache orientation.  The method
        and witness are carried over unchanged (they describe how the
        canonical orientation was resolved); ``probes`` is zero because
        the mirror costs no further look-ups.
        """
        path = None if self.path is None else list(reversed(self.path))
        return QueryResult(
            source=self.target,
            target=self.source,
            distance=self.distance,
            path=path,
            method=self.method,
            witness=self.witness,
            probes=0,
        )


@dataclass
class OracleCounters:
    """Aggregate instrumentation across an oracle's lifetime."""

    queries: int = 0
    probes: int = 0
    worst_probes: int = 0
    by_method: Counter = field(default_factory=Counter)

    def record(self, result: QueryResult) -> None:
        """Fold one query outcome into the aggregates."""
        self.queries += 1
        self.probes += result.probes
        if result.probes > self.worst_probes:
            self.worst_probes = result.probes
        self.by_method[result.method] += 1

    @property
    def mean_probes(self) -> float:
        """Average probes per query (Table 3, "average-case")."""
        return self.probes / self.queries if self.queries else 0.0

    def reset(self) -> None:
        """Zero all aggregates."""
        self.queries = 0
        self.probes = 0
        self.worst_probes = 0
        self.by_method.clear()


class VicinityOracle:
    """Answer exact shortest-path queries by vicinity intersection.

    Build either from a graph (runs the offline phase)::

        oracle = VicinityOracle.build(graph, alpha=4.0, seed=7)

    or wrap an existing :class:`VicinityIndex`::

        oracle = VicinityOracle(index)

    The read path runs on the flat
    :class:`~repro.core.engine.FlatQueryEngine` — the index is
    flattened once (lazily, on the first query) and every probe
    executes against contiguous arrays.  The per-node dicts of the
    wrapped :class:`VicinityIndex` remain the mutable build/repair
    representation (the dynamic oracle edits them, then re-flattens the
    touched slices via :meth:`refresh_engine`).
    """

    def __init__(self, index: VicinityIndex) -> None:
        self.index = index
        self.counters = OracleCounters()
        self._engine = None
        self._engine_generation = -1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: CSRGraph,
        *,
        alpha: float = 4.0,
        seed: Optional[int] = None,
        config: Optional[OracleConfig] = None,
        progress=None,
        representation: str = "dict",
        workers: int = 1,
        **config_overrides,
    ) -> "VicinityOracle":
        """Run the offline phase and return a ready oracle.

        Args:
            graph: the network.
            alpha: vicinity-size parameter (ignored when ``config`` is
                given).
            seed: landmark-sampling seed (ignored when ``config`` is
                given).
            config: fully explicit configuration; overrides the
                shorthand arguments.
            progress: optional build progress callback.
            representation: offline-build representation
                (:data:`repro.core.index.REPRESENTATIONS`); ``"flat"``
                is the fast, dict-free pipeline.
            workers: worker processes for the flat pipeline.
            **config_overrides: any other :class:`OracleConfig` field.
        """
        if config is None:
            config = OracleConfig(alpha=alpha, seed=seed, **config_overrides)
        elif config_overrides:
            raise QueryError("pass either config or keyword overrides, not both")
        return cls(
            VicinityIndex.build(
                graph,
                config,
                progress=progress,
                representation=representation,
                workers=workers,
            )
        )

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """The indexed graph."""
        return self.index.graph

    @property
    def config(self) -> OracleConfig:
        """The build configuration."""
        return self.index.config

    def stats(self) -> IndexStats:
        """Structural statistics of the built index (Figure 2 inputs)."""
        return IndexStats.from_index(self.index)

    def memory(self) -> MemoryReport:
        """Memory accounting for the built index (§3.2 claims)."""
        return memory_report(self.index)

    # ------------------------------------------------------------------
    # the flat engine
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The flat query engine this oracle's read path runs on.

        Built on first access (one flattening pass over the index,
        cached on the index object) and reused for every subsequent
        query.  A generation counter on the index — bumped by
        :meth:`refresh_engine` after every mutation — makes *every*
        wrapper of a mutated index rebuild from the refreshed flatten,
        matching the retired dict path's always-live reads.
        """
        generation = getattr(self.index, "_flat_generation", 0)
        if self._engine is None or self._engine_generation != generation:
            from repro.core.engine import FlatQueryEngine

            self._engine = FlatQueryEngine.from_index(self.index)
            self._engine_generation = generation
        return self._engine

    def refresh_engine(self, nodes=None) -> None:
        """Re-flatten after an in-place index mutation.

        The dynamic oracle calls this after each repair with exactly
        the vicinity ids it rebuilt; only those slices (plus the
        landmark tables, which repair mutates in place) are
        re-extracted into the index-level flatten cache.  Bumping the
        index's flatten generation invalidates the engine of every
        oracle wrapping this index, not just this one.  With
        ``nodes=None`` the cache is dropped and rebuilt in full,
        lazily.
        """
        index = self.index
        cached = getattr(index, "_flat_index", None)
        if nodes is not None and cached is not None:
            index._flat_index = cached.refreshed(index, nodes)
        else:
            index._flat_index = None
        # A flat-built index keeps its store-layout arrays for dict-free
        # persistence; any mutation invalidates them (the next flatten
        # re-extracts from the live records).
        index._flat_store = None
        index._flat_generation = getattr(index, "_flat_generation", 0) + 1
        self._engine = None

    # ------------------------------------------------------------------
    # the online phase
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> Optional[Distance]:
        """Return the exact distance, or ``None`` if unanswerable."""
        return self.query(source, target).distance

    def path(self, source: int, target: int) -> list[int]:
        """Return one exact shortest path ``source .. target``.

        Raises:
            UnreachableError: when the pair is disconnected.
            QueryError: when the oracle misses and no fallback is
                configured.
        """
        result = self.query(source, target, with_path=True)
        if result.method == "disconnected":
            raise UnreachableError(source, target)
        if result.path is None:
            raise QueryError(
                f"oracle cannot produce a path for ({source}, {target}); "
                f"method={result.method!r} "
                "(build with store_paths=True and fallback enabled)"
            )
        return result.path

    def nearest(
        self, source: int, candidates, k: int = 1
    ) -> list[tuple[int, Distance]]:
        """Return the ``k`` candidates closest to ``source``.

        The §1 "socially-sensitive search" primitive: rank content or
        users by social distance.  Unanswerable candidates (misses with
        no fallback, disconnections) are excluded.

        Args:
            source: the querying user.
            candidates: node ids to rank.
            k: how many winners to return.

        Returns:
            Up to ``k`` ``(candidate, distance)`` pairs, closest first;
            ties broken by node id for determinism.
        """
        if k < 1:
            raise QueryError("k must be at least 1")
        scored = []
        for candidate in candidates:
            distance = self.query(source, int(candidate)).distance
            if distance is not None:
                scored.append((int(candidate), distance))
        scored.sort(key=lambda item: (item[1], item[0]))
        return scored[:k]

    def explain(self, source: int, target: int) -> str:
        """Return a human-readable trace of how Algorithm 1 resolved a pair.

        Intended for debugging and teaching; the distances come from the
        same code path as :meth:`query`.
        """
        result = self.query(source, target, with_path=self.config.store_paths)
        index = self.index
        lines = [f"query ({source}, {target}) -> distance {result.distance}"]
        flags = index.landmarks.is_landmark
        lines.append(
            f"  source in L: {bool(flags[source])}; target in L: {bool(flags[target])}"
        )
        vic_s, vic_t = index.vicinities[source], index.vicinities[target]
        lines.append(
            f"  |Gamma(s)|={vic_s.size} (boundary {vic_s.boundary_size}, "
            f"radius {vic_s.radius}); "
            f"|Gamma(t)|={vic_t.size} (boundary {vic_t.boundary_size}, "
            f"radius {vic_t.radius})"
        )
        lines.append(f"  resolved by: {result.method} after {result.probes} probes")
        if result.witness is not None:
            lines.append(
                f"  witness w={result.witness}: d(s,w)={vic_s.dist.get(result.witness)}"
                f" + d(w,t)={vic_t.dist.get(result.witness)}"
            )
        if result.path is not None:
            lines.append("  path: " + " -> ".join(map(str, result.path)))
        return "\n".join(lines)

    def query_many(
        self, pairs, *, with_path: bool = False
    ) -> list[QueryResult]:
        """Answer a batch of ``(source, target)`` pairs.

        A convenience wrapper over :meth:`query` for workload-style use
        (the §2.3 protocol, bulk screening in the examples).
        """
        return [self.query(s, t, with_path=with_path) for s, t in pairs]

    def query_batch(
        self, pairs, *, with_path: bool = False
    ) -> list[QueryResult]:
        """Answer many ``(source, target)`` pairs with batch-level grouping.

        Semantically identical to mapping :meth:`query` over ``pairs``
        — same distances, methods and probe counts per pair, counters
        folded in once per pair — but executed through the engine's
        fused batch lanes: one vectorised bounds check, one landmark
        gather per table lane, two global searchsorteds for conditions
        (3)/(4), and the fused intersection join (sorted by source so
        repeated sources share one boundary payload) for the rest.
        This is the substrate the serving layer's
        :class:`~repro.service.batch.BatchExecutor` builds on (adding
        deduplication, symmetry and caching).

        Args:
            pairs: iterable of ``(source, target)`` node pairs.
            with_path: also reconstruct shortest paths.

        Returns:
            One :class:`QueryResult` per input pair, in input order.
        """
        from repro.core.engine import run_query_batch

        index = self.index
        if with_path and not index.config.store_paths and index.config.fallback == "none":
            raise QueryError("index was built with store_paths=False")
        return run_query_batch(
            self.engine,
            pairs,
            with_path,
            check_node=index.graph.check_node,
            fallback=self._fallback if index.config.fallback != "none" else None,
            record=self.counters.record,
        )

    def distances_from(self, source: int, targets) -> list[Optional[Distance]]:
        """Return distances from ``source`` to each of ``targets``.

        Landmark sources short-circuit through their full table (one
        array read per target) instead of running Algorithm 1 per pair.
        """
        index = self.index
        index.graph.check_node(source)
        table = index.tables.get(source) if index.landmarks.is_landmark[source] else None
        results: list[Optional[Distance]] = []
        for target in targets:
            if table is not None:
                index.graph.check_node(target)
                results.append(0 if target == source else table.distance_to(target))
            else:
                results.append(self.query(source, target).distance)
        return results

    def query(self, source: int, target: int, *, with_path: bool = False) -> QueryResult:
        """Run Algorithm 1 for one source-target pair.

        Args:
            source: query source node.
            target: query target node.
            with_path: also reconstruct a shortest path (requires the
                index to have been built with ``store_paths=True``
                except on the fallback route).

        Returns:
            A :class:`QueryResult`; ``distance`` is ``None`` only when
            the pair is disconnected or the oracle misses without a
            fallback.
        """
        index = self.index
        graph = index.graph
        graph.check_node(source)
        graph.check_node(target)
        if with_path and not index.config.store_paths and index.config.fallback == "none":
            raise QueryError("index was built with store_paths=False")

        result = self.engine.resolve(int(source), int(target), with_path)
        if result.method == "miss" and index.config.fallback != "none":
            result = self._fallback(source, target, result.probes, with_path)
        self.counters.record(result)
        return result

    def _fallback(
        self, source: int, target: int, probes: int, with_path: bool
    ) -> QueryResult:
        if self.index.config.fallback == "none":
            return QueryResult(source, target, None, None, "miss", None, probes)
        graph = self.index.graph
        if with_path:
            distance, path = fallback_path(graph, source, target)
        else:
            distance, path = fallback_distance(graph, source, target), None
        if distance is None:
            return QueryResult(source, target, None, None, "disconnected", None, probes)
        return QueryResult(source, target, distance, path, "fallback", None, probes)
