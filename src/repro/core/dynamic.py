"""Dynamic vicinity oracle: edge insertions without full rebuilds.

The paper's related work cites fully-dynamic landmark techniques [17];
social networks grow continuously, so a practical deployment needs at
least incremental *insertion* support.  This module provides it for
unweighted graphs with two mechanisms:

1. **landmark-table repair** — an inserted edge can only decrease
   distances, so each landmark table is repaired with a decrease-only
   BFS seeded at the cheaper endpoint (classic dynamic-SSSP insertion
   case);
2. **conservative vicinity rebuild** — a vicinity ``Gamma(w)`` (radius
   ``r``) can change only if ``min(d'(w,u), d'(w,v)) <= r`` (``d'`` =
   post-insertion distances).  Distances/membership can change only
   when the new edge creates a strictly shorter path into the ball:
   any changed distance ``d'(w,x) <= r`` decomposes as
   ``d'(w,u) + 1 + d'(v,x)`` (or symmetrically), forcing
   ``d'(w,u) < r``.  The *boundary* can additionally change without
   any distance changing: the insertion gives ``u`` and ``v`` — and
   only them — a new neighbour, so a rim member (``d'(w,u) == r``)
   whose neighbours were all inside ``Gamma(w)`` becomes a boundary
   node, which Lemma 1's boundary-restricted scan must see.  Hence the
   non-strict test; everything else is provably untouched.

The landmark *set* is frozen across updates: sampling probabilities
drift as degrees grow, and :meth:`DynamicVicinityOracle.staleness`
reports how far the frozen set has drifted so callers can schedule a
re-sample (deletions are out of scope and raise).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import OracleConfig
from repro.core.index import VicinityIndex
from repro.core.landmarks import sampling_probabilities
from repro.core.oracle import QueryResult, VicinityOracle
from repro.core.vicinity import Vicinity, build_vicinity
from repro.exceptions import EdgeError, IndexBuildError
from repro.graph.builder import graph_from_arrays
from repro.graph.csr import CSRGraph
from repro.graph.traversal.bfs import bfs_distances
from repro.graph.traversal.bounded import truncated_bfs_ball


class DynamicVicinityOracle:
    """A vicinity oracle that absorbs edge insertions incrementally.

    Usage::

        oracle = DynamicVicinityOracle.build(graph, alpha=4.0, seed=7)
        oracle.add_edge(12, 99)
        oracle.distance(3, 1042)

    Query behaviour matches a fresh :class:`VicinityOracle` built on the
    updated graph with the *same frozen landmark set* (tested property).
    """

    def __init__(self, index: VicinityIndex) -> None:
        if index.graph.is_weighted:
            raise IndexBuildError("the dynamic oracle supports unweighted graphs")
        self.index = index
        self._oracle = VicinityOracle(index)
        self._edges_added = 0
        self._caches: list = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: CSRGraph,
        *,
        alpha: float = 4.0,
        seed: Optional[int] = None,
        config: Optional[OracleConfig] = None,
    ) -> "DynamicVicinityOracle":
        """Build the initial index (same semantics as the static oracle)."""
        if config is None:
            config = OracleConfig(alpha=alpha, seed=seed)
        return cls(VicinityIndex.build(graph, config))

    # ------------------------------------------------------------------
    # queries (delegate to the wrapped static engine)
    # ------------------------------------------------------------------
    def query(self, source: int, target: int, *, with_path: bool = False) -> QueryResult:
        """Answer one query on the current graph."""
        return self._oracle.query(source, target, with_path=with_path)

    def query_batch(self, pairs, *, with_path: bool = False) -> list[QueryResult]:
        """Answer a batch on the current graph (the serving-layer surface).

        Makes the dynamic oracle a valid
        :class:`~repro.service.batch.BatchExecutor` backend; pair it
        with :meth:`attach_cache` so edge insertions evict stale
        entries.
        """
        return self._oracle.query_batch(pairs, with_path=with_path)

    def distance(self, source: int, target: int):
        """Return the exact distance on the current graph."""
        return self._oracle.distance(source, target)

    def path(self, source: int, target: int) -> list[int]:
        """Return one shortest path on the current graph."""
        return self._oracle.path(source, target)

    @property
    def graph(self) -> CSRGraph:
        """The current (post-insertions) graph."""
        return self.index.graph

    @property
    def edges_added(self) -> int:
        """How many edges have been absorbed since the build."""
        return self._edges_added

    # ------------------------------------------------------------------
    # caches
    # ------------------------------------------------------------------
    def attach_cache(self, cache) -> None:
        """Register a result cache for invalidation on edge insertions.

        ``cache`` is anything with ``invalidate_where(stale)`` —
        normally a :class:`~repro.service.cache.ResultCache` fronting
        this oracle through a ``BatchExecutor``.  On every
        :meth:`add_edge`, attached caches drop exactly the pairs the new
        edge can shorten (or newly connect); without this hook a cache
        keeps serving pre-insertion distances forever.
        """
        if cache not in self._caches:
            self._caches.append(cache)

    def detach_cache(self, cache) -> None:
        """Stop invalidating ``cache`` (absent caches are ignored)."""
        if cache in self._caches:
            self._caches.remove(cache)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Insert the undirected edge ``{u, v}`` and repair the index.

        Returns:
            ``True`` if the edge was new, ``False`` if it already
            existed (no work done).

        Raises:
            EdgeError: for self-loops or unknown endpoints.
        """
        graph = self.index.graph
        graph.check_node(u)
        graph.check_node(v)
        if u == v:
            raise EdgeError("self-loops are not allowed")
        if graph.has_edge(u, v):
            return False

        new_graph = self._rebuild_graph_with_edge(u, v)
        self.index.graph = new_graph
        self._repair_tables(new_graph, u, v)
        # Post-insertion distances from both endpoints drive both the
        # conservative vicinity-rebuild test and exact cache eviction.
        dist_u = bfs_distances(new_graph, u)
        dist_v = bfs_distances(new_graph, v)
        touched = self._rebuild_affected_vicinities(new_graph, u, v, dist_u, dist_v)
        self._invalidate_caches(dist_u, dist_v)
        # Re-flatten exactly the slices the repair touched, so the flat
        # read path keeps serving without a full rebuild (the landmark
        # tables are re-stacked inside the refresh — table repair
        # mutates them in place).
        self._oracle.refresh_engine(touched)
        self._edges_added += 1
        return True

    #: Alias matching the serving layer's "edge insertion" vocabulary.
    insert_edge = add_edge

    def _invalidate_caches(self, dist_u: np.ndarray, dist_v: np.ndarray) -> None:
        """Evict attached-cache entries the new edge can invalidate.

        A new edge ``{u, v}`` only ever *shortens* distances, and any
        shortened ``d(s, t)`` must route through it:
        ``d'(s, t) = min(d(s, t), d'(s, u) + 1 + d'(v, t),
        d'(s, v) + 1 + d'(u, t))``.  With the post-insertion BFS layers
        from both endpoints in hand, the through-edge candidate is exact
        — a cached pair is evicted iff the candidate beats its stored
        distance (or the pair was stored unanswered and is now
        reachable through the edge).
        """
        if not self._caches:
            return

        def stale(entry) -> bool:
            du_s, dv_s = int(dist_u[entry.source]), int(dist_v[entry.source])
            du_t, dv_t = int(dist_u[entry.target]), int(dist_v[entry.target])
            candidate = None
            if du_s >= 0 and dv_t >= 0:
                candidate = du_s + 1 + dv_t
            if dv_s >= 0 and du_t >= 0:
                other = dv_s + 1 + du_t
                candidate = other if candidate is None else min(candidate, other)
            if candidate is None:
                return False
            return entry.distance is None or candidate < entry.distance

        for cache in self._caches:
            cache.invalidate_where(stale)

    def _rebuild_graph_with_edge(self, u: int, v: int) -> CSRGraph:
        """Produce the post-insertion CSR graph."""
        graph = self.index.graph
        src, dst, _w = graph.edge_arrays()
        src = np.concatenate([src, [u]])
        dst = np.concatenate([dst, [v]])
        return graph_from_arrays(src, dst, n=graph.n)

    def _repair_tables(self, graph: CSRGraph, u: int, v: int) -> None:
        """Decrease-only BFS repair of every landmark table."""
        adj = graph.adjacency()
        for table in self.index.tables.values():
            dist = table.dist
            parent = table.parent
            for a, b in ((u, v), (v, u)):
                da, db = int(dist[a]), int(dist[b])
                if da < 0:
                    continue
                if db >= 0 and db <= da + 1:
                    continue
                dist[b] = da + 1
                if parent is not None:
                    parent[b] = a
                frontier = [b]
                while frontier:
                    next_frontier = []
                    for x in frontier:
                        dx = int(dist[x])
                        for y in adj[x]:
                            dy = int(dist[y])
                            if dy < 0 or dy > dx + 1:
                                dist[y] = dx + 1
                                if parent is not None:
                                    parent[y] = x
                                next_frontier.append(y)
                    frontier = next_frontier

    def _rebuild_affected_vicinities(
        self, graph: CSRGraph, u: int, v: int, dist_u: np.ndarray, dist_v: np.ndarray
    ) -> list[int]:
        """Rebuild exactly the vicinities the insertion may have changed.

        ``dist_u`` / ``dist_v`` are the post-insertion BFS distances
        from the edge endpoints (undirected, so ``d'(w, u) == d'(u, w)``).
        Returns the rebuilt vicinity ids (the slices the flat engine
        must re-flatten).
        """
        flags = self.index.landmarks.is_landmark
        adj = graph.adjacency()
        touched: list[int] = []
        for w in range(graph.n):
            if flags[w]:
                continue
            vic = self.index.vicinities[w]
            radius = vic.radius
            du, dv = int(dist_u[w]), int(dist_v[w])
            nearest = min(d for d in (du, dv) if d >= 0) if (du >= 0 or dv >= 0) else -1
            if radius is None:
                # Degenerate whole-component vicinity: rebuild if the
                # edge touches the component at all.
                affected = nearest >= 0
            else:
                # Non-strict: an endpoint exactly on the rim can flip
                # from interior to boundary (see module docstring).
                affected = 0 <= nearest <= radius
            if not affected:
                continue
            result = truncated_bfs_ball(graph, w, flags)
            self.index.vicinities[w] = build_vicinity(
                w,
                result.radius,
                result.dist,
                result.pred,
                result.gamma,
                adj,
                store_paths=self.index.config.store_paths,
            )
            touched.append(w)
        return touched

    # ------------------------------------------------------------------
    # staleness diagnostics
    # ------------------------------------------------------------------
    def staleness(self) -> float:
        """Total-variation drift between frozen and ideal sampling.

        0.0 means the frozen landmark set's sampling distribution still
        matches current degrees exactly; values approaching 1.0 suggest
        re-sampling (``rebuild()``).
        """
        landmarks = self.index.landmarks
        old = landmarks.probabilities
        new = sampling_probabilities(
            self.index.graph, landmarks.alpha, scale=landmarks.scale
        )
        denominator = float(new.sum())
        if denominator == 0.0:
            return 0.0
        return float(np.abs(new - old).sum()) / denominator

    def rebuild(self) -> None:
        """Full re-sample and rebuild on the current graph."""
        self.index = VicinityIndex.build(self.index.graph, self.index.config)
        self._oracle = VicinityOracle(self.index)
