"""Path reconstruction from stored predecessor pointers (§3.1).

The data structure stores, for each vicinity member ``v`` of ``u``, the
predecessor of ``v`` on a shortest ``u -> v`` path; landmark tables
store the analogous BFS/Dijkstra tree parent.  §3.1's "series of
next-hops" is realised by walking these pointers: the path ``s -> w``
comes out of ``s``'s own table, the path ``w -> t`` out of ``t``'s, and
the two halves are spliced at the witness ``w``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import QueryError


def walk_predecessors(pred: Mapping[int, int], start: int, root: int) -> list[int]:
    """Walk ``pred`` pointers from ``start`` back to ``root``.

    Returns the node sequence ``[root, ..., start]`` (root first).

    Raises:
        QueryError: if the chain is broken or cyclic — which would
            indicate index corruption, so fail loudly.
    """
    path = [start]
    node = start
    for _hop in range(len(pred) + 1):
        if node == root:
            path.reverse()
            return path
        parent = pred.get(node)
        if parent is None:
            raise QueryError(f"broken predecessor chain at node {node}")
        node = parent
        path.append(node)
    raise QueryError(f"cyclic predecessor chain walking {start} -> {root}")


def walk_parent_array(parent: Sequence[int], start: int, root: int) -> list[int]:
    """Array-table variant of :func:`walk_predecessors` (landmark tables).

    Returns ``[root, ..., start]``.
    """
    path = [start]
    node = start
    n = len(parent)
    for _hop in range(n + 1):
        if node == root:
            path.reverse()
            return path
        nxt = int(parent[node])
        # Unreachable markers sit outside [0, n): -1 in the signed
        # tables, the wrapped all-ones sentinel in compact unsigned
        # ones — one range check covers both.
        if not 0 <= nxt < n:
            raise QueryError(f"broken parent chain at node {node}")
        node = nxt
        path.append(node)
    raise QueryError(f"cyclic parent chain walking {start} -> {root}")


def splice_at_witness(
    pred_s: Mapping[int, int], pred_t: Mapping[int, int], source: int, target: int, witness: int
) -> list[int]:
    """Combine the two half-paths meeting at ``witness``.

    ``pred_s`` reconstructs ``source -> witness``; ``pred_t``
    reconstructs ``target -> witness``, which reversed becomes
    ``witness -> target``.  Returns the full ``source .. target`` path.
    """
    first = walk_predecessors(pred_s, witness, source)  # [source .. witness]
    second = walk_predecessors(pred_t, witness, target)  # [target .. witness]
    second.reverse()  # [witness .. target]
    return first + second[1:]


def validate_path(path: Sequence[int], has_edge, source: int, target: int) -> None:
    """Assert that ``path`` is a real ``source -> target`` walk.

    Used by tests and the oracle's optional self-check mode.

    Args:
        path: candidate node sequence.
        has_edge: callable ``(u, v) -> bool`` for edge existence.
        source: expected first node.
        target: expected last node.

    Raises:
        QueryError: if any check fails.
    """
    if not path:
        raise QueryError("empty path")
    if path[0] != source or path[-1] != target:
        raise QueryError(
            f"path endpoints ({path[0]}, {path[-1]}) do not match query "
            f"({source}, {target})"
        )
    for u, v in zip(path, path[1:]):
        if not has_edge(u, v):
            raise QueryError(f"path uses missing edge ({u}, {v})")
