"""The retired dict probe paths, preserved as the parity baseline.

Before PR 3, :class:`~repro.core.oracle.VicinityOracle` and
:class:`~repro.core.directed.DirectedVicinityOracle` resolved queries by
probing the per-node dict records directly; the flat
:class:`~repro.core.engine.FlatQueryEngine` is now the canonical read
path and the dict resolvers were deleted from the serving surface.
They live on here, verbatim, for two purposes only:

* the dict↔flat **parity suite** (``tests/core/test_engine.py``) pins
  every :class:`QueryResult` field of the engine against this
  implementation across random graphs, kernels, directed mode and
  post-insertion dynamic repair;
* ``benchmarks/bench_service.py`` races the fused flat ``query_batch``
  against this dict ``query_batch`` to keep the headline speedup
  honest (the acceptance bar is >= 2x).

Nothing in the serving stack may import this module.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.fallback import fallback_distance, fallback_path
from repro.core.intersect import run_kernel, scan_and_probe
from repro.core.oracle import QueryResult
from repro.core.paths import (
    splice_at_witness,
    walk_parent_array,
    walk_predecessors,
)
from repro.exceptions import QueryError


class DictReferenceOracle:
    """Algorithm 1 over the per-node dict records (the PR 2 read path).

    Mirrors the pre-engine ``VicinityOracle`` byte for byte — same
    resolution order, probe counting, witness tie-breaking and path
    splicing — minus the lifetime counters (parity tests compare
    per-query results, not aggregates).
    """

    def __init__(self, index) -> None:
        self.index = index

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    def query(self, source: int, target: int, *, with_path: bool = False) -> QueryResult:
        index = self.index
        index.graph.check_node(source)
        index.graph.check_node(target)
        if with_path and not index.config.store_paths and index.config.fallback == "none":
            raise QueryError("index was built with store_paths=False")
        return self._resolve(source, target, with_path)

    def query_batch(self, pairs, *, with_path: bool = False) -> list[QueryResult]:
        """The PR 2 dict ``query_batch``: vectorised landmark lanes,
        per-pair dict dispatch for everything else."""
        index = self.index
        graph = index.graph
        pair_list = [(int(s), int(t)) for s, t in pairs]
        if not pair_list:
            return []
        if with_path and not index.config.store_paths and index.config.fallback == "none":
            raise QueryError("index was built with store_paths=False")

        flat = np.asarray(pair_list, dtype=np.int64)
        out_of_range = (flat < 0) | (flat >= graph.n)
        if out_of_range.any():
            graph.check_node(int(flat[out_of_range][0]))

        sources, targets = flat[:, 0], flat[:, 1]
        flags = np.asarray(index.landmarks.is_landmark, dtype=np.uint8)
        source_is_landmark = flags[sources]
        target_is_landmark = flags[targets]

        tables = index.tables
        results: list[Optional[QueryResult]] = [None] * len(pair_list)
        for i, (s, t) in enumerate(pair_list):
            if s == t:
                result = QueryResult(
                    s, t, 0, [s] if with_path else None, "identical", None, 0
                )
            elif source_is_landmark[i] and s in tables:
                result = self._answer_from_table(
                    s, t, tables[s], "landmark-source", 2, with_path
                )
            elif target_is_landmark[i] and t in tables:
                result = self._answer_from_table(
                    s, t, tables[t], "landmark-target", 3, with_path
                )
            else:
                result = self._resolve(s, t, with_path)
            results[i] = result
        return results

    # ------------------------------------------------------------------
    # the dict resolution chain (formerly VicinityOracle._resolve)
    # ------------------------------------------------------------------
    def _resolve(self, source: int, target: int, with_path: bool) -> QueryResult:
        index = self.index
        probes = 0

        if source == target:
            return QueryResult(
                source, target, 0, [source] if with_path else None, "identical", None, 0
            )

        flags = index.landmarks.is_landmark
        probes += 1
        if flags[source]:
            table = index.tables.get(source)
            if table is not None:
                probes += 1
                return self._answer_from_table(
                    source, target, table, "landmark-source", probes, with_path
                )
        probes += 1
        if flags[target]:
            table = index.tables.get(target)
            if table is not None:
                probes += 1
                return self._answer_from_table(
                    source, target, table, "landmark-target", probes, with_path
                )

        vic_s = index.vicinities[source]
        vic_t = index.vicinities[target]

        probes += 1
        if target in vic_s.members:
            path = None
            if with_path:
                path = walk_predecessors(vic_s.pred, target, source)
            return QueryResult(
                source, target, vic_s.dist[target], path,
                "target-in-source-vicinity", None, probes,
            )
        probes += 1
        if source in vic_t.members:
            path = None
            if with_path:
                path = walk_predecessors(vic_t.pred, source, target)
                path.reverse()
            return QueryResult(
                source, target, vic_t.dist[source], path,
                "source-in-target-vicinity", None, probes,
            )

        best, witness, kernel_probes = run_kernel(index.config.kernel, vic_s, vic_t)
        probes += kernel_probes
        if best is not None and witness is not None:
            path = None
            if with_path:
                path = splice_at_witness(vic_s.pred, vic_t.pred, source, target, witness)
            return QueryResult(source, target, best, path, "intersection", witness, probes)

        return self._fallback(source, target, probes, with_path)

    def _answer_from_table(
        self, source, target, table, method, probes, with_path
    ) -> QueryResult:
        other = target if method == "landmark-source" else source
        distance = table.distance_to(other)
        if distance is None:
            return QueryResult(source, target, None, None, "disconnected", None, probes)
        path = None
        if with_path:
            if table.parent is None:
                raise QueryError("index was built with store_paths=False")
            if method == "landmark-source":
                path = walk_parent_array(table.parent, target, source)
            else:
                path = walk_parent_array(table.parent, source, target)
                path.reverse()
        return QueryResult(source, target, distance, path, method, None, probes)

    def _fallback(
        self, source: int, target: int, probes: int, with_path: bool
    ) -> QueryResult:
        if self.index.config.fallback == "none":
            return QueryResult(source, target, None, None, "miss", None, probes)
        graph = self.index.graph
        if with_path:
            distance, path = fallback_path(graph, source, target)
        else:
            distance, path = fallback_distance(graph, source, target), None
        if distance is None:
            return QueryResult(source, target, None, None, "disconnected", None, probes)
        return QueryResult(source, target, distance, path, "fallback", None, probes)


def directed_reference_resolve(oracle, source: int, target: int, with_path: bool = False):
    """The pre-engine ``DirectedVicinityOracle._resolve``, preserved.

    Reads the directed oracle's dict structures (out/in vicinities,
    forward/backward tables) exactly as PR 2 did, including the
    boundary-smaller scan choice and reversed-orientation path walks.
    Fallback is reported as a plain ``miss`` — the caller owns fallback
    conversion, matching the engine-backed oracle's split.
    """
    from repro.core.directed import DirectedQueryResult

    probes = 0
    if source == target:
        return DirectedQueryResult(
            source, target, 0, [source] if with_path else None, "identical", None, 0
        )
    probes += 1
    if oracle.is_landmark[source]:
        dist, parent = oracle.forward_tables[source]
        probes += 1
        d = int(dist[target])
        if d < 0:
            return DirectedQueryResult(
                source, target, None, None, "disconnected", None, probes
            )
        path = walk_parent_array(parent, target, source) if with_path else None
        return DirectedQueryResult(
            source, target, d, path, "landmark-source", None, probes
        )
    probes += 1
    if oracle.is_landmark[target]:
        dist, parent = oracle.backward_tables[target]
        probes += 1
        d = int(dist[source])
        if d < 0:
            return DirectedQueryResult(
                source, target, None, None, "disconnected", None, probes
            )
        path = None
        if with_path:
            path = walk_parent_array(parent, source, target)
            path.reverse()
        return DirectedQueryResult(
            source, target, d, path, "landmark-target", None, probes
        )

    vic_out = oracle.out_vicinities[source]
    vic_in = oracle.in_vicinities[target]
    probes += 1
    if target in vic_out.members:
        path = (
            walk_predecessors(vic_out.pred, target, source) if with_path else None
        )
        return DirectedQueryResult(
            source, target, vic_out.dist[target], path,
            "target-in-source-vicinity", None, probes,
        )
    probes += 1
    if source in vic_in.members:
        path = None
        if with_path:
            path = walk_predecessors(vic_in.pred, source, target)
            path.reverse()
        return DirectedQueryResult(
            source, target, vic_in.dist[source], path,
            "source-in-target-vicinity", None, probes,
        )

    if len(vic_out.boundary) <= len(vic_in.boundary):
        best, witness, kernel_probes = scan_and_probe(
            vic_out.boundary, vic_out.dist, vic_in.members, vic_in.dist
        )
    else:
        best, witness, kernel_probes = scan_and_probe(
            vic_in.boundary, vic_in.dist, vic_out.members, vic_out.dist
        )
    probes += kernel_probes
    if best is not None and witness is not None:
        path = None
        if with_path:
            first = walk_predecessors(vic_out.pred, witness, source)
            second = walk_predecessors(vic_in.pred, witness, target)
            second.reverse()
            path = first + second[1:]
        return DirectedQueryResult(
            source, target, best, path, "intersection", witness, probes
        )
    return DirectedQueryResult(source, target, None, None, "miss", None, probes)
