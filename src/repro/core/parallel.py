"""Partitioned serving simulation (§5) and the flat-native build backend.

The paper asks whether vicinity intersection can be parallelised without
replicating the data structure on every machine.  The structure
partitions naturally:

* each shard owns the vicinities of its resident nodes;
* each landmark's full table lives on the landmark's shard (optionally
  replicated everywhere for latency);
* the input graph itself is needed *nowhere* at query time — unlike the
  MapReduce/Pregel approaches the paper cites, which ship the whole
  network.

A query ``(s, t)`` is routed to ``shard(s)`` (the coordinator).  The
coordinator resolves conditions (1) and (3) of Algorithm 1 locally,
resolves (2)/(4) with one round trip to ``shard(t)``, and performs
intersection by shipping the *boundary* of ``Gamma(s)`` — the same
small set Lemma 1 licenses probing — to ``shard(t)``.  The simulation
counts messages and bytes per query and reports per-shard memory, which
is what a deployment needs to size machines.

The second half of this module is the offline counterpart of the
serving-side process pool: :func:`build_flat_store` runs the whole
§2.2/§3.1 precomputation *flat-natively* — batched truncated BFS
(:mod:`repro.graph.traversal.batched`), vectorised boundary extraction
(:func:`repro.core.vicinity.boundary_mask_packed`) and direct packing
into the persistence layout — optionally partitioned across worker
processes that share the CSR through one
:class:`~repro.io.shm.SharedArrayBundle` segment and return packed
per-source slices the coordinator concatenates straight into
:class:`~repro.core.flat.FlatIndex` arrays.  No per-node dict record is
ever materialised on this path; the dict builder in
:class:`~repro.core.index.VicinityIndex` survives as the parity
baseline (pinned field-identical in ``tests/core/test_flatbuild.py``).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.flat import compact_store_arrays, id_dtype_for, pred_sentinel
from repro.core.index import VicinityIndex
from repro.core.intersect import scan_and_probe
from repro.core.memory import BYTES_PER_ENTRY_WITH_PATHS
from repro.core.oracle import QueryResult
from repro.core.vicinity import boundary_mask_packed
from repro.exceptions import IndexBuildError, QueryError
from repro.graph.csr import CSRGraph
from repro.graph.traversal.batched import NO_RADIUS, grow_balls

#: Modelled wire size of one (node id, distance) pair.
BYTES_PER_WIRE_ENTRY = 8
#: Modelled wire size of a control message (request/response header).
BYTES_PER_CONTROL = 64


def shard_assignment(n: int, num_shards: int, placement: str = "hash") -> np.ndarray:
    """Vectorised node-to-shard map (``shard_of`` for all of ``V`` at once).

    Element ``u`` equals :meth:`PartitionedOracle.shard_of` ``(u)`` for
    the same placement — pinned by a test, since both serving backends
    route with this array.
    """
    if num_shards < 1:
        raise QueryError("num_shards must be at least 1")
    ids = np.arange(n, dtype=np.int64)
    if placement == "hash":
        return ((ids * 2654435761 % (1 << 32)) % num_shards).astype(np.int64)
    if placement == "range":
        span = (n + num_shards - 1) // num_shards
        return np.minimum(ids // span, num_shards - 1)
    raise QueryError("placement must be 'hash' or 'range'")


def balance_summary_from_reports(reports: list["ShardReport"]) -> dict[str, float]:
    """Load-balance metrics over per-shard model memory sizes."""
    sizes = [r.model_bytes for r in reports]
    mean = sum(sizes) / len(sizes) if sizes else 0.0
    worst = max(sizes) if sizes else 0
    return {
        "shards": float(len(reports)),
        "mean_bytes": mean,
        "max_bytes": float(worst),
        "imbalance": (worst / mean) if mean else 0.0,
    }


@dataclass
class MessageLog:
    """Network traffic incurred by queries in the simulation."""

    messages: int = 0
    bytes: int = 0
    remote_queries: int = 0
    local_queries: int = 0

    def record_round_trip(self, payload_bytes: int) -> None:
        """One request/response exchange with the given payload size."""
        self.messages += 2
        self.bytes += 2 * BYTES_PER_CONTROL + payload_bytes

    @property
    def mean_messages(self) -> float:
        """Average messages per query."""
        total = self.remote_queries + self.local_queries
        return self.messages / total if total else 0.0


@dataclass
class ShardReport:
    """Memory accounting for one shard."""

    shard_id: int
    nodes: int = 0
    vicinity_entries: int = 0
    boundary_entries: int = 0
    table_entries: int = 0

    @property
    def model_bytes(self) -> int:
        """Bytes under the same cost model as :mod:`repro.core.memory`."""
        return (
            (self.vicinity_entries + self.table_entries) * BYTES_PER_ENTRY_WITH_PATHS
            + self.boundary_entries * 4
        )


class PartitionedOracle:
    """Vicinity intersection served from ``num_shards`` machines.

    Wraps a built :class:`VicinityIndex`; placement is by node id hash
    (``"hash"``) or contiguous ranges (``"range"``).  Query results are
    identical to the single-machine oracle for every method except
    fallback, which is disabled (a distributed graph search would
    require the input network the design deliberately does not ship) —
    misses are reported as such.
    """

    def __init__(
        self,
        index: VicinityIndex,
        num_shards: int,
        *,
        placement: str = "hash",
        replicate_tables: bool = False,
    ) -> None:
        if num_shards < 1:
            raise QueryError("num_shards must be at least 1")
        if placement not in ("hash", "range"):
            raise QueryError("placement must be 'hash' or 'range'")
        self.index = index
        self.num_shards = num_shards
        self.placement = placement
        self.replicate_tables = replicate_tables
        self.log = MessageLog()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def shard_of(self, u: int) -> int:
        """Return the shard owning node ``u``."""
        self.index.graph.check_node(u)
        if self.placement == "hash":
            # Multiplicative hashing: avoids pathological locality of
            # consecutive ids while staying deterministic.
            return (u * 2654435761 % (1 << 32)) % self.num_shards
        span = (self.index.n + self.num_shards - 1) // self.num_shards
        return min(u // span, self.num_shards - 1)

    def shard_reports(self) -> list[ShardReport]:
        """Per-shard memory accounting (the deployment-sizing output)."""
        reports = [ShardReport(shard_id=k) for k in range(self.num_shards)]
        for u in range(self.index.n):
            report = reports[self.shard_of(u)]
            report.nodes += 1
            vic = self.index.vicinities[u]
            report.vicinity_entries += vic.size
            report.boundary_entries += vic.boundary_size
        for landmark in self.index.tables:
            if self.replicate_tables:
                for report in reports:
                    report.table_entries += self.index.n
            else:
                reports[self.shard_of(landmark)].table_entries += self.index.n
        return reports

    # ------------------------------------------------------------------
    # query simulation
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> QueryResult:
        """Answer a query, logging the simulated traffic.

        Distances (and methods) match the single-machine oracle except
        that missing intersections report ``"miss"`` instead of running
        a fallback search.
        """
        index = self.index
        index.graph.check_node(source)
        index.graph.check_node(target)
        same_shard = self.shard_of(source) == self.shard_of(target)
        if same_shard:
            self.log.local_queries += 1
        else:
            self.log.remote_queries += 1
        probes = 0

        if source == target:
            return QueryResult(source, target, 0, None, "identical", None, 0)

        flags = index.landmarks.is_landmark
        probes += 1
        if flags[source] and source in index.tables:
            # Table lives with s on the coordinator (or everywhere).
            probes += 1
            d = index.tables[source].distance_to(target)
            method = "landmark-source" if d is not None else "disconnected"
            return QueryResult(source, target, d, None, method, None, probes)
        probes += 1
        if flags[target] and target in index.tables:
            probes += 1
            if not same_shard and not self.replicate_tables:
                self.log.record_round_trip(BYTES_PER_WIRE_ENTRY)
            d = index.tables[target].distance_to(source)
            method = "landmark-target" if d is not None else "disconnected"
            return QueryResult(source, target, d, None, method, None, probes)

        vic_s = index.vicinities[source]
        vic_t = index.vicinities[target]
        probes += 1
        if target in vic_s.members:
            return QueryResult(
                source, target, vic_s.dist[target], None,
                "target-in-source-vicinity", None, probes,
            )
        probes += 1
        if source in vic_t.members:
            if not same_shard:
                self.log.record_round_trip(BYTES_PER_WIRE_ENTRY)
            return QueryResult(
                source, target, vic_t.dist[source], None,
                "source-in-target-vicinity", None, probes,
            )

        # Intersection: ship s's boundary (with distances) to shard(t).
        if not same_shard:
            self.log.record_round_trip(len(vic_s.boundary) * BYTES_PER_WIRE_ENTRY)
        best, witness, kernel_probes = scan_and_probe(
            vic_s.boundary, vic_s.dist, vic_t.members, vic_t.dist
        )
        probes += kernel_probes
        if best is not None:
            return QueryResult(
                source, target, best, None, "intersection", witness, probes
            )
        return QueryResult(source, target, None, None, "miss", None, probes)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def balance_summary(self) -> dict[str, float]:
        """Load-balance metrics over shard memory sizes."""
        return balance_summary_from_reports(self.shard_reports())


# ======================================================================
# flat-native offline build (vicinities + tables, dict-free)
# ======================================================================

#: Sources per vicinity work unit.  Small enough for load balance and
#: progress granularity, large enough that per-chunk overhead (one
#: pool round trip, a few array concatenations) stays negligible.
BUILD_CHUNK_SOURCES = 4096

#: Landmark tables per work unit in the table stage.
BUILD_CHUNK_TABLES = 16

#: Worker-side state for the build pool, keyed by the shared segment
#: name — workers re-attach lazily when a task references a different
#: build's segment, which is what lets one pool serve many rebuilds.
_BUILD_STATE: dict = {}


def create_build_pool(workers: int, *, start_method: Optional[str] = None):
    """A reusable :class:`ProcessPoolExecutor` for repeated flat builds.

    Spawn cost dominates multi-worker builds at small scale (each spawn
    worker re-imports numpy); a persistent pool pays it once across
    every rebuild passed via ``build_flat_store(..., pool=...)``.
    Prefers the ``fork`` start method where the platform offers it —
    forked workers skip the re-import entirely — and falls back to
    ``spawn``.  Callers own the pool's lifetime (``pool.shutdown()``).

    Memory note: each worker keeps the *last* build's shared-CSR
    mapping attached until the next build's first task replaces it (or
    the pool shuts down), so an idle pool pins roughly one graph's CSR
    in ``/dev/shm``.  Shut the pool down between builds of very large
    graphs if that residency matters more than the spawn saving.
    """
    import multiprocessing

    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    context = multiprocessing.get_context(start_method)
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


def build_flat_store(
    graph: CSRGraph,
    config,
    landmarks,
    *,
    workers: int = 1,
    pool: Optional[ProcessPoolExecutor] = None,
    progress: Optional[Callable[[str, int, int], None]] = None,
    timings: Optional[dict] = None,
) -> dict[str, np.ndarray]:
    """Run the offline phase straight into the flat persistence layout.

    The dict-free counterpart of
    :meth:`repro.core.index.VicinityIndex.from_landmarks`: every array
    of :data:`repro.io.oracle_store.FLAT_STORE_ARRAYS` is produced
    directly — batched truncated BFS for the vicinities (per-node
    scalar Dijkstra on weighted graphs), vectorised boundary
    extraction, stacked single-source sweeps for the landmark tables —
    with no per-node ``Vicinity`` record in between.  The output is
    field-identical to ``flatten_index(VicinityIndex.from_landmarks(...))``
    for the same ``(graph, config, landmarks)``.

    Args:
        graph: the network (undirected CSR; weighted or not).
        config: the :class:`~repro.core.config.OracleConfig` in effect.
        landmarks: the frozen :class:`~repro.core.landmarks.LandmarkSet`.
        workers: worker processes sharing the CSR through shared
            memory; ``1`` builds in-process.  Results are identical for
            any worker count (pinned by a test).
        pool: a reusable executor from :func:`create_build_pool` —
            repeated rebuilds then skip per-build process spawn (the
            PR 4 follow-up).  Workers receive each build's shared-CSR
            spec with their tasks and re-attach only when it changes,
            so one pool serves any sequence of graphs.  Overrides
            ``workers``.
        progress: optional ``(stage, done, total)`` callback, matching
            the dict builder's stages.
        timings: optional dict that receives per-stage wall-clock
            seconds (``"vicinities"``, ``"landmark-tables"``).

    Raises:
        IndexBuildError: empty graph, or ``vicinity_floor`` on a
            weighted graph (mirrors the dict builder).
    """
    if graph.n == 0:
        raise IndexBuildError("cannot build an index over an empty graph")
    if workers < 1:
        raise IndexBuildError("workers must be at least 1")
    weighted = graph.is_weighted
    min_size: Optional[int] = None
    if config.vicinity_floor > 0:
        if weighted:
            raise IndexBuildError(
                "vicinity_floor requires an unweighted graph "
                "(per-node radii are only provably exact there)"
            )
        min_size = int(config.vicinity_floor * config.alpha * np.sqrt(graph.n))
    flags = np.frombuffer(landmarks.is_landmark, dtype=np.uint8)
    table_ids = landmarks.ids if config.landmark_tables != "none" else None
    meta = {
        "min_size": min_size,
        "store_paths": bool(config.store_paths),
        "weighted": weighted,
    }

    vic_bounds = _chunk_bounds(graph.n, BUILD_CHUNK_SOURCES)
    started = time.perf_counter()
    if pool is None and workers == 1:
        state = {"graph": graph, "flags": flags, **meta}
        vic_chunks = []
        for lo, hi in vic_bounds:
            vic_chunks.append(_vicinity_chunk(state, lo, hi))
            if progress is not None:
                progress("vicinities", hi, graph.n)
        if timings is not None:
            timings["vicinities"] = time.perf_counter() - started
        table_chunks, table_elapsed = _run_table_stage(
            table_ids,
            progress,
            lambda id_chunks: (_tables_chunk(state, ids) for ids in id_chunks),
        )
    else:
        from repro.io.shm import SharedArrayBundle

        shared = {
            "indptr": graph.indptr,
            "indices": graph.indices,
            "flags": flags,
        }
        if weighted:
            shared["weights"] = graph.weights
        owns_pool = pool is None
        if owns_pool:
            pool = create_build_pool(workers, start_method="spawn")
        try:
            with SharedArrayBundle.create(shared) as bundle:
                build = (bundle.spec, graph.n, meta)
                vic_chunks = []
                vic_tasks = [(*build, bounds) for bounds in vic_bounds]
                for (lo, hi), chunk in zip(
                    vic_bounds, pool.map(_build_worker_vicinities, vic_tasks)
                ):
                    vic_chunks.append(chunk)
                    if progress is not None:
                        progress("vicinities", hi, graph.n)
                if timings is not None:
                    timings["vicinities"] = time.perf_counter() - started
                table_chunks, table_elapsed = _run_table_stage(
                    table_ids,
                    progress,
                    lambda id_chunks: pool.map(
                        _build_worker_tables,
                        [(*build, ids) for ids in id_chunks],
                    ),
                )
        finally:
            if owns_pool:
                pool.shutdown()
    if timings is not None:
        timings["landmark-tables"] = table_elapsed

    return _assemble_store(
        vic_chunks, table_chunks, graph.n, weighted, landmarks
    )


def _chunk_bounds(total: int, step: int) -> list[tuple[int, int]]:
    return [(lo, min(lo + step, total)) for lo in range(0, total, step)]


def _run_table_stage(table_ids, progress, run_chunks):
    """Time and drive the landmark-table stage over chunked id ranges.

    ``run_chunks`` maps a list of landmark-id arrays to an in-order
    iterable of table chunk results (inline generator or pool map).
    """
    if table_ids is None or table_ids.size == 0:
        return [], 0.0
    started = time.perf_counter()
    bounds = _chunk_bounds(table_ids.size, BUILD_CHUNK_TABLES)
    id_chunks = [table_ids[lo:hi] for lo, hi in bounds]
    chunks = []
    for (lo, hi), chunk in zip(bounds, run_chunks(id_chunks)):
        chunks.append(chunk)
        if progress is not None:
            progress("landmark-tables", hi, int(table_ids.size))
    return chunks, time.perf_counter() - started


# ----------------------------------------------------------------------
# per-chunk work (shared between the inline path and pool workers)
# ----------------------------------------------------------------------
def _build_worker_state(spec, n: int, meta: dict) -> dict:
    """The worker-side state for one build, (re-)attached on demand.

    Every task carries its build's ``(spec, n, meta)``, and the worker
    keeps one attachment cached by segment name — so a long-lived pool
    (:func:`create_build_pool`) maps each build's shared CSR exactly
    once per worker, and a different build's first task transparently
    swaps the mapping.
    """
    from repro.io.shm import SharedArrayBundle

    state = _BUILD_STATE
    if state.get("segment") != spec["segment"]:
        stale = state.get("bundle")
        if stale is not None:
            stale.close()
        bundle = SharedArrayBundle.attach(spec)
        arrays = bundle.arrays
        graph = CSRGraph(
            n, arrays["indptr"], arrays["indices"], arrays.get("weights")
        )
        state.clear()
        state.update(
            {
                "segment": spec["segment"],
                "bundle": bundle,
                "graph": graph,
                "flags": arrays["flags"],
            }
        )
    state.update(meta)
    return state


def _build_worker_vicinities(task):
    spec, n, meta, (lo, hi) = task
    return _vicinity_chunk(_build_worker_state(spec, n, meta), lo, hi)


def _build_worker_tables(task):
    spec, n, meta, ids = task
    return _tables_chunk(_build_worker_state(spec, n, meta), ids)


def _vicinity_chunk(state: dict, lo: int, hi: int) -> dict[str, np.ndarray]:
    """Build the packed store slices of every node in ``[lo, hi)``.

    Returns per-chunk counts plus concatenated entry columns; landmark
    nodes contribute empty slices and radius 0 exactly as Definition 1
    (and the dict builder) dictate.
    """
    graph: CSRGraph = state["graph"]
    flags: np.ndarray = state["flags"]
    ids = id_dtype_for(graph.n)
    span = hi - lo
    is_lm = flags[lo:hi].astype(bool)
    sources = np.arange(lo, hi, dtype=np.int64)[~is_lm]
    radii = np.zeros(span, dtype=np.float64)

    if state["weighted"]:
        packed = _weighted_sources_packed(graph, flags, sources, state["store_paths"])
        (vic_counts, vic_nodes, vic_dists, vic_preds,
         member_counts, member_nodes, boundary_counts, boundary_nodes,
         source_radii) = packed
    else:
        balls = grow_balls(
            graph.indptr, graph.indices, graph.n, sources, flags,
            min_size=state["min_size"], id_dtype=ids,
        )
        ball_counts = np.diff(balls.offsets)
        local_owner = np.repeat(
            np.arange(sources.size, dtype=np.int64), ball_counts
        )
        # Within-slice sort by node id (the flat probe layout); the
        # boundary keeps the packed discovery order — Lemma 1's scan
        # order, which the kernels' witness tie-breaking depends on.
        key = local_owner * np.int64(graph.n) + balls.nodes
        order = np.argsort(key, kind="stable")
        vic_counts = member_counts = ball_counts
        vic_nodes = member_nodes = balls.nodes[order]
        vic_dists = balls.dists[order].astype(np.int32, copy=False)
        if state["store_paths"]:
            vic_preds = balls.preds[order]
        else:
            vic_preds = np.full(
                balls.preds.size, pred_sentinel(ids), dtype=ids
            )
        bmask = balls.boundary_mask
        boundary_nodes = balls.nodes[bmask]
        boundary_counts = np.bincount(
            local_owner[bmask], minlength=sources.size
        ).astype(np.int64)
        source_radii = np.where(
            balls.radii == NO_RADIUS, np.nan, balls.radii.astype(np.float64)
        )

    radii[~is_lm] = source_radii
    counts_full = np.zeros(span, dtype=np.int64)
    counts_full[~is_lm] = vic_counts
    member_full = np.zeros(span, dtype=np.int64)
    member_full[~is_lm] = member_counts
    boundary_full = np.zeros(span, dtype=np.int64)
    boundary_full[~is_lm] = boundary_counts
    return {
        "vic_counts": counts_full,
        "vic_nodes": vic_nodes,
        "vic_dists": vic_dists,
        "vic_preds": vic_preds,
        "member_counts": member_full,
        "member_nodes": member_nodes,
        "boundary_counts": boundary_full,
        "boundary_nodes": boundary_nodes,
        "radii": radii,
    }


def _weighted_sources_packed(
    graph: CSRGraph, flags: np.ndarray, sources: np.ndarray, store_paths: bool
):
    """Weighted chunk: per-source scalar Dijkstra, packed dict-free.

    Weighted balls stay per-node (a batched Dijkstra would need a
    mergeable frontier heap), but the packing — sorted distance-table
    slices, sorted member arrays, vectorised boundary masks — runs on
    arrays, so the coordinator still never sees a ``Vicinity`` record.
    """
    from repro.core.flat import _sorted_vic_slice
    from repro.graph.traversal.bounded import truncated_dijkstra_ball

    ids = id_dtype_for(graph.n)
    sentinel = pred_sentinel(ids)
    # The scalar loop indexes the flags per neighbour; a bytearray
    # iterates unboxed where a numpy scalar would dominate the loop.
    flag_bytes = bytearray(flags.tobytes())
    vic_counts = np.zeros(sources.size, dtype=np.int64)
    member_counts = np.zeros(sources.size, dtype=np.int64)
    boundary_counts = np.zeros(sources.size, dtype=np.int64)
    radii = np.full(sources.size, np.nan, dtype=np.float64)
    vic_nodes_parts, vic_dists_parts, vic_preds_parts = [], [], []
    member_parts, boundary_parts = [], []
    single_offset = np.zeros(2, dtype=np.int64)
    for i, u in enumerate(sources.tolist()):
        result = truncated_dijkstra_ball(graph, u, flag_bytes)
        keys, values, preds = _sorted_vic_slice(result, np.float64)
        if store_paths:
            preds = preds.astype(ids)  # -1 wraps to the sentinel
        else:
            preds = np.full(keys.size, sentinel, dtype=ids)
        gamma = np.asarray(result.gamma, dtype=np.int64)
        members = np.sort(gamma)
        single_offset[1] = gamma.size
        bmask = boundary_mask_packed(
            single_offset, gamma, members, graph.indptr, graph.indices, graph.n
        )
        vic_counts[i] = keys.size
        member_counts[i] = members.size
        vic_nodes_parts.append(keys.astype(ids))
        vic_dists_parts.append(values)
        vic_preds_parts.append(preds)
        member_parts.append(members.astype(ids))
        boundary = gamma[bmask]
        boundary_counts[i] = boundary.size
        boundary_parts.append(boundary.astype(ids))
        if result.radius is not None:
            radii[i] = float(result.radius)
    empty = np.zeros(0, dtype=ids)
    return (
        vic_counts,
        np.concatenate(vic_nodes_parts) if vic_nodes_parts else empty,
        (
            np.concatenate(vic_dists_parts)
            if vic_dists_parts
            else np.zeros(0, dtype=np.float64)
        ),
        np.concatenate(vic_preds_parts) if vic_preds_parts else empty,
        member_counts,
        np.concatenate(member_parts) if member_parts else empty,
        boundary_counts,
        np.concatenate(boundary_parts) if boundary_parts else empty,
        radii,
    )


def _tables_chunk(state, ids: np.ndarray) -> dict[str, np.ndarray]:
    """Single-source sweeps for a chunk of landmarks, stacked."""
    graph: CSRGraph = state["graph"]
    store_paths: bool = state["store_paths"]
    dist_rows, parent_rows = [], []
    if state["weighted"]:
        from repro.graph.traversal.dijkstra import dijkstra_tree

        for landmark in ids.tolist():
            dist, parent = dijkstra_tree(graph, landmark)
            dist_rows.append(dist)
            parent_rows.append(parent.astype(np.int32))
    else:
        from repro.graph.traversal.vectorized import bfs_tree_vectorized

        for landmark in ids.tolist():
            dist, parent = bfs_tree_vectorized(graph, landmark)
            dist_rows.append(dist)
            parent_rows.append(parent)
    out = {"dist": np.stack(dist_rows)}
    out["parent"] = (
        np.stack(parent_rows)
        if store_paths
        else np.zeros((0, 0), dtype=np.int32)
    )
    return out


def _assemble_store(
    vic_chunks, table_chunks, n: int, weighted: bool, landmarks
) -> dict[str, np.ndarray]:
    """Concatenate packed chunks into the persistence layout."""
    dist_dtype = np.float64 if weighted else np.int32
    store = _assemble_vicinity_parts(vic_chunks, n, dist_dtype)
    table_dist, table_parent = _assemble_tables(table_chunks, dist_dtype)
    store.update(
        {
            "landmarks": landmarks.ids,
            "landmark_scale": np.asarray(landmarks.scale, dtype=np.float64),
            "table_dist": table_dist,
            "table_parent": table_parent,
        }
    )
    # The entry columns arrive compact from the chunks; this settles
    # offsets, table parents and the weighted float32-exactness
    # decision, so build output and dict flatten share one dtype policy.
    return compact_store_arrays(store, n, weighted=weighted)


def _assemble_vicinity_parts(vic_chunks, n: int, dist_dtype) -> dict[str, np.ndarray]:
    ids = id_dtype_for(n)

    def offsets_of(count_key: str) -> np.ndarray:
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.concatenate([c[count_key] for c in vic_chunks]), out=offsets[1:]
        )
        return offsets

    def column(key: str, dtype) -> np.ndarray:
        parts = [c[key] for c in vic_chunks if c[key].size]
        if not parts:
            return np.zeros(0, dtype=dtype)
        return np.ascontiguousarray(np.concatenate(parts), dtype=dtype)

    return {
        "vic_offsets": offsets_of("vic_counts"),
        "vic_nodes": column("vic_nodes", ids),
        "vic_dists": column("vic_dists", dist_dtype),
        "vic_preds": column("vic_preds", ids),
        "member_offsets": offsets_of("member_counts"),
        "member_nodes": column("member_nodes", ids),
        "boundary_offsets": offsets_of("boundary_counts"),
        "boundary_nodes": column("boundary_nodes", ids),
        "radii": np.concatenate([c["radii"] for c in vic_chunks]),
    }


def _assemble_tables(table_chunks, dist_dtype):
    if table_chunks:
        table_dist = np.vstack([c["dist"] for c in table_chunks])
        parent_parts = [c["parent"] for c in table_chunks if c["parent"].size]
        table_parent = (
            np.vstack(parent_parts)
            if parent_parts
            else np.zeros((0, 0), dtype=np.int32)
        )
    else:
        table_dist = np.zeros((0, 0), dtype=dist_dtype)
        table_parent = np.zeros((0, 0), dtype=np.int32)
    return table_dist, table_parent


class _RawCSR:
    """Minimal CSR view the unweighted chunk builder can traverse.

    The directed builder hands one *orientation* of a digraph to
    :func:`_vicinity_chunk`, which only touches ``n``/``indptr``/
    ``indices`` on the unweighted path — no :class:`CSRGraph` invariants
    (symmetry) apply to a single orientation.
    """

    __slots__ = ("n", "indptr", "indices")
    is_weighted = False

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, n: int) -> None:
        self.indptr = indptr
        self.indices = indices
        self.n = int(n)


def build_directed_side_store(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    flags: np.ndarray,
    landmark_ids: np.ndarray,
    *,
    min_size: Optional[int] = None,
    tables: bool = True,
) -> dict[str, np.ndarray]:
    """Flat-native offline build of one directed orientation.

    The directed analogue of :func:`build_flat_store` for a single
    side: batched truncated BFS over the orientation's CSR, vectorised
    boundary extraction, plus that orientation's stacked landmark
    tables (forward tables for the out side when given
    ``(out_indptr, out_indices)``, backward for the in side).  The
    output layout matches
    :func:`repro.core.flat.directed_side_store_arrays` on the dict
    builder's records, field for field.
    """
    from repro.graph.traversal.vectorized import digraph_bfs_tree_vectorized

    state = {
        "graph": _RawCSR(indptr, indices, n),
        "flags": np.asarray(flags, dtype=np.uint8),
        "weighted": False,
        "store_paths": True,
        "min_size": min_size,
    }
    chunks = [
        _vicinity_chunk(state, lo, hi)
        for lo, hi in _chunk_bounds(n, BUILD_CHUNK_SOURCES)
    ]
    store = _assemble_vicinity_parts(chunks, n, np.int32)
    ids = np.ascontiguousarray(landmark_ids, dtype=np.int64)
    store["landmarks"] = ids
    if tables and ids.size:
        dist_rows, parent_rows = [], []
        for landmark in ids.tolist():
            dist, parent = digraph_bfs_tree_vectorized(indptr, indices, n, landmark)
            dist_rows.append(dist)
            parent_rows.append(parent)
        store["table_dist"] = np.stack(dist_rows)
        store["table_parent"] = np.stack(parent_rows)
    else:
        store["table_dist"] = np.zeros((0, 0), dtype=np.int32)
        store["table_parent"] = np.zeros((0, 0), dtype=np.int32)
    return compact_store_arrays(store, n, weighted=False)
