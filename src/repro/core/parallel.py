"""Partitioned serving simulation (§5, research challenge 3).

The paper asks whether vicinity intersection can be parallelised without
replicating the data structure on every machine.  The structure
partitions naturally:

* each shard owns the vicinities of its resident nodes;
* each landmark's full table lives on the landmark's shard (optionally
  replicated everywhere for latency);
* the input graph itself is needed *nowhere* at query time — unlike the
  MapReduce/Pregel approaches the paper cites, which ship the whole
  network.

A query ``(s, t)`` is routed to ``shard(s)`` (the coordinator).  The
coordinator resolves conditions (1) and (3) of Algorithm 1 locally,
resolves (2)/(4) with one round trip to ``shard(t)``, and performs
intersection by shipping the *boundary* of ``Gamma(s)`` — the same
small set Lemma 1 licenses probing — to ``shard(t)``.  The simulation
counts messages and bytes per query and reports per-shard memory, which
is what a deployment needs to size machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.index import VicinityIndex
from repro.core.intersect import scan_and_probe
from repro.core.memory import BYTES_PER_ENTRY_WITH_PATHS
from repro.core.oracle import QueryResult
from repro.exceptions import QueryError

#: Modelled wire size of one (node id, distance) pair.
BYTES_PER_WIRE_ENTRY = 8
#: Modelled wire size of a control message (request/response header).
BYTES_PER_CONTROL = 64


def shard_assignment(n: int, num_shards: int, placement: str = "hash") -> np.ndarray:
    """Vectorised node-to-shard map (``shard_of`` for all of ``V`` at once).

    Element ``u`` equals :meth:`PartitionedOracle.shard_of` ``(u)`` for
    the same placement — pinned by a test, since both serving backends
    route with this array.
    """
    if num_shards < 1:
        raise QueryError("num_shards must be at least 1")
    ids = np.arange(n, dtype=np.int64)
    if placement == "hash":
        return ((ids * 2654435761 % (1 << 32)) % num_shards).astype(np.int64)
    if placement == "range":
        span = (n + num_shards - 1) // num_shards
        return np.minimum(ids // span, num_shards - 1)
    raise QueryError("placement must be 'hash' or 'range'")


def balance_summary_from_reports(reports: list["ShardReport"]) -> dict[str, float]:
    """Load-balance metrics over per-shard model memory sizes."""
    sizes = [r.model_bytes for r in reports]
    mean = sum(sizes) / len(sizes) if sizes else 0.0
    worst = max(sizes) if sizes else 0
    return {
        "shards": float(len(reports)),
        "mean_bytes": mean,
        "max_bytes": float(worst),
        "imbalance": (worst / mean) if mean else 0.0,
    }


@dataclass
class MessageLog:
    """Network traffic incurred by queries in the simulation."""

    messages: int = 0
    bytes: int = 0
    remote_queries: int = 0
    local_queries: int = 0

    def record_round_trip(self, payload_bytes: int) -> None:
        """One request/response exchange with the given payload size."""
        self.messages += 2
        self.bytes += 2 * BYTES_PER_CONTROL + payload_bytes

    @property
    def mean_messages(self) -> float:
        """Average messages per query."""
        total = self.remote_queries + self.local_queries
        return self.messages / total if total else 0.0


@dataclass
class ShardReport:
    """Memory accounting for one shard."""

    shard_id: int
    nodes: int = 0
    vicinity_entries: int = 0
    boundary_entries: int = 0
    table_entries: int = 0

    @property
    def model_bytes(self) -> int:
        """Bytes under the same cost model as :mod:`repro.core.memory`."""
        return (
            (self.vicinity_entries + self.table_entries) * BYTES_PER_ENTRY_WITH_PATHS
            + self.boundary_entries * 4
        )


class PartitionedOracle:
    """Vicinity intersection served from ``num_shards`` machines.

    Wraps a built :class:`VicinityIndex`; placement is by node id hash
    (``"hash"``) or contiguous ranges (``"range"``).  Query results are
    identical to the single-machine oracle for every method except
    fallback, which is disabled (a distributed graph search would
    require the input network the design deliberately does not ship) —
    misses are reported as such.
    """

    def __init__(
        self,
        index: VicinityIndex,
        num_shards: int,
        *,
        placement: str = "hash",
        replicate_tables: bool = False,
    ) -> None:
        if num_shards < 1:
            raise QueryError("num_shards must be at least 1")
        if placement not in ("hash", "range"):
            raise QueryError("placement must be 'hash' or 'range'")
        self.index = index
        self.num_shards = num_shards
        self.placement = placement
        self.replicate_tables = replicate_tables
        self.log = MessageLog()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def shard_of(self, u: int) -> int:
        """Return the shard owning node ``u``."""
        self.index.graph.check_node(u)
        if self.placement == "hash":
            # Multiplicative hashing: avoids pathological locality of
            # consecutive ids while staying deterministic.
            return (u * 2654435761 % (1 << 32)) % self.num_shards
        span = (self.index.n + self.num_shards - 1) // self.num_shards
        return min(u // span, self.num_shards - 1)

    def shard_reports(self) -> list[ShardReport]:
        """Per-shard memory accounting (the deployment-sizing output)."""
        reports = [ShardReport(shard_id=k) for k in range(self.num_shards)]
        for u in range(self.index.n):
            report = reports[self.shard_of(u)]
            report.nodes += 1
            vic = self.index.vicinities[u]
            report.vicinity_entries += vic.size
            report.boundary_entries += vic.boundary_size
        for landmark in self.index.tables:
            if self.replicate_tables:
                for report in reports:
                    report.table_entries += self.index.n
            else:
                reports[self.shard_of(landmark)].table_entries += self.index.n
        return reports

    # ------------------------------------------------------------------
    # query simulation
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> QueryResult:
        """Answer a query, logging the simulated traffic.

        Distances (and methods) match the single-machine oracle except
        that missing intersections report ``"miss"`` instead of running
        a fallback search.
        """
        index = self.index
        index.graph.check_node(source)
        index.graph.check_node(target)
        same_shard = self.shard_of(source) == self.shard_of(target)
        if same_shard:
            self.log.local_queries += 1
        else:
            self.log.remote_queries += 1
        probes = 0

        if source == target:
            return QueryResult(source, target, 0, None, "identical", None, 0)

        flags = index.landmarks.is_landmark
        probes += 1
        if flags[source] and source in index.tables:
            # Table lives with s on the coordinator (or everywhere).
            probes += 1
            d = index.tables[source].distance_to(target)
            method = "landmark-source" if d is not None else "disconnected"
            return QueryResult(source, target, d, None, method, None, probes)
        probes += 1
        if flags[target] and target in index.tables:
            probes += 1
            if not same_shard and not self.replicate_tables:
                self.log.record_round_trip(BYTES_PER_WIRE_ENTRY)
            d = index.tables[target].distance_to(source)
            method = "landmark-target" if d is not None else "disconnected"
            return QueryResult(source, target, d, None, method, None, probes)

        vic_s = index.vicinities[source]
        vic_t = index.vicinities[target]
        probes += 1
        if target in vic_s.members:
            return QueryResult(
                source, target, vic_s.dist[target], None,
                "target-in-source-vicinity", None, probes,
            )
        probes += 1
        if source in vic_t.members:
            if not same_shard:
                self.log.record_round_trip(BYTES_PER_WIRE_ENTRY)
            return QueryResult(
                source, target, vic_t.dist[source], None,
                "source-in-target-vicinity", None, probes,
            )

        # Intersection: ship s's boundary (with distances) to shard(t).
        if not same_shard:
            self.log.record_round_trip(len(vic_s.boundary) * BYTES_PER_WIRE_ENTRY)
        best, witness, kernel_probes = scan_and_probe(
            vic_s.boundary, vic_s.dist, vic_t.members, vic_t.dist
        )
        probes += kernel_probes
        if best is not None:
            return QueryResult(
                source, target, best, None, "intersection", witness, probes
            )
        return QueryResult(source, target, None, None, "miss", None, probes)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def balance_summary(self) -> dict[str, float]:
        """Load-balance metrics over shard memory sizes."""
        return balance_summary_from_reports(self.shard_reports())
