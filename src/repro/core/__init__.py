"""The paper's contribution: vicinity construction and intersection.

Offline phase (§2.2): :mod:`~repro.core.landmarks` samples the landmark
set ``L`` degree-proportionally; :mod:`~repro.core.index` grows a
truncated ball per node (Definition 1) and full tables per landmark.

Online phase (§3.1): :class:`~repro.core.oracle.VicinityOracle` runs
Algorithm 1 — four table shortcuts, then boundary-driven vicinity
intersection — returning exact distances and paths with instrumented
hash-probe counts.

Extensions (§5 research challenges): :mod:`~repro.core.directed`
(directed networks), :mod:`~repro.core.parallel` (partitioned serving
without replicating the structure), :mod:`~repro.core.dynamic`
(edge insertions).
"""

from repro.core.config import OracleConfig
from repro.core.landmarks import (
    LandmarkSet,
    calibrate_scale,
    sample_landmarks,
    sampling_probabilities,
)
from repro.core.vicinity import Vicinity, compute_boundary
from repro.core.index import VicinityIndex
from repro.core.oracle import (
    CHEAP_METHODS,
    EXPENSIVE_METHODS,
    METHODS,
    QueryResult,
    VicinityOracle,
)
from repro.core.memory import MemoryReport, memory_report
from repro.core.stats import IndexStats
from repro.core.directed import DirectedQueryResult, DirectedVicinityOracle
from repro.core.parallel import PartitionedOracle, ShardReport, build_flat_store
from repro.core.dynamic import DynamicVicinityOracle
from repro.core.flat import FlatIndex, flatten_index
from repro.core.engine import FlatQueryEngine, QueryEngine, ShardQueryEngine

__all__ = [
    "OracleConfig",
    "LandmarkSet",
    "calibrate_scale",
    "sample_landmarks",
    "sampling_probabilities",
    "Vicinity",
    "compute_boundary",
    "VicinityIndex",
    "VicinityOracle",
    "QueryResult",
    "METHODS",
    "CHEAP_METHODS",
    "EXPENSIVE_METHODS",
    "MemoryReport",
    "memory_report",
    "IndexStats",
    "DirectedVicinityOracle",
    "DirectedQueryResult",
    "PartitionedOracle",
    "ShardReport",
    "build_flat_store",
    "DynamicVicinityOracle",
    "FlatIndex",
    "flatten_index",
    "FlatQueryEngine",
    "QueryEngine",
    "ShardQueryEngine",
]
