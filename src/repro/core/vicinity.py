"""Per-node vicinity records (Definition 1) and boundary extraction.

A vicinity stores exactly what §3.1's data structure prescribes: for
every member ``v`` of ``Gamma(u)``, the exact distance ``d(u, v)`` and a
predecessor pointer for path reconstruction, plus the precomputed
boundary list that Algorithm 1 iterates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

Distance = Union[int, float]


@dataclass
class Vicinity:
    """The stored neighbourhood record of one node.

    Attributes:
        node: the owner ``u``.
        radius: ``d(u, l(u))`` — distance to the nearest landmark
            (``None`` when the component has no landmark and the
            vicinity degenerated to the whole component).
        dist: exact distance to every member of ``Gamma(u)``.  For
            weighted graphs this may include a few extra settled nodes
            beyond ``Gamma(u)`` (see :mod:`repro.graph.traversal.bounded`);
            ``members`` is then the authoritative membership set.
        pred: predecessor toward ``u`` for every key of ``dist``
            (``pred[u] == u``); empty when built distances-only.
        members: the member ids of ``Gamma(u)``; for unweighted graphs
            this is exactly ``dist.keys()``.
        boundary: members with at least one neighbour outside
            ``Gamma(u)`` — the iteration set of Algorithm 1.
    """

    node: int
    radius: Optional[Distance]
    dist: dict[int, Distance]
    pred: dict[int, int] = field(default_factory=dict)
    members: frozenset[int] = frozenset()
    boundary: list[int] = field(default_factory=list)

    def __contains__(self, v: int) -> bool:
        return v in self.members

    @property
    def size(self) -> int:
        """``|Gamma(u)|`` — the paper's vicinity-size quantity."""
        return len(self.members)

    @property
    def boundary_size(self) -> int:
        """``|∂Gamma(u)|`` — the paper's boundary-size quantity (Fig. 2b)."""
        return len(self.boundary)

    def distance_to(self, v: int) -> Optional[Distance]:
        """Return ``d(node, v)`` if ``v`` is a member, else ``None``."""
        if v not in self.members:
            return None
        return self.dist[v]


def compute_boundary(
    members: Sequence[int], member_set: frozenset[int], adjacency: list[list[int]]
) -> list[int]:
    """Return the boundary nodes of a vicinity, in member order.

    A member ``v`` is on the boundary iff it has at least one neighbour
    outside the vicinity (``N(v) ⊄ Gamma(u)``).  Lemma 1 proves probing
    only these nodes preserves exactness, and Figure 2(b) shows they are
    a small fraction of ``n`` — this is where the online speed comes
    from.
    """
    boundary: list[int] = []
    for v in members:
        for w in adjacency[v]:
            if w not in member_set:
                boundary.append(v)
                break
    return boundary


def boundary_mask_packed(
    offsets: np.ndarray,
    nodes: np.ndarray,
    member_key_sorted: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    scale: int,
) -> np.ndarray:
    """Vectorised :func:`compute_boundary` over packed vicinities.

    ``nodes`` holds many vicinities' members concatenated in their scan
    order (``offsets`` delimits each vicinity's slice), and
    ``member_key_sorted`` is the globally sorted ``owner * scale + node``
    membership key of the same vicinities.  One CSR gather enumerates
    every member's neighbours, one ``searchsorted`` settles all the
    membership tests at once, and a prefix-sum count per neighbour
    segment answers "has any neighbour outside" — the exact boundary
    predicate of Lemma 1, with the flat-native builder's per-entry
    boolean mask preserving the stored scan order.

    Returns the boolean mask over ``nodes`` marking boundary members.
    """
    # Local import: the traversal package owns the CSR gather; this
    # module is imported by it nowhere, so the edge stays acyclic.
    from repro.graph.traversal.batched import gather_csr_rows

    if nodes.size == 0:
        return np.zeros(0, dtype=bool)
    owner = np.repeat(
        np.arange(offsets.size - 1, dtype=np.int64), np.diff(offsets)
    )
    neighbours, degs = gather_csr_rows(indptr, indices, nodes)
    if neighbours.size == 0:
        return np.zeros(nodes.size, dtype=bool)
    if member_key_sorted.size == 0:
        return degs > 0
    key = np.repeat(owner, degs) * np.int64(scale) + neighbours
    pos = np.searchsorted(member_key_sorted, key)
    np.minimum(pos, member_key_sorted.size - 1, out=pos)
    outside = member_key_sorted[pos] != key
    # Per-member "any neighbour outside" without reduceat's empty-
    # segment pitfall: a running count differenced at slice bounds.
    cum = np.zeros(neighbours.size + 1, dtype=np.int64)
    np.cumsum(outside, out=cum[1:])
    ends = np.cumsum(degs)
    return cum[ends] > cum[ends - degs]


def build_vicinity(
    node: int,
    radius: Optional[Distance],
    dist: dict[int, Distance],
    pred: dict[int, int],
    gamma: Sequence[int],
    adjacency: list[list[int]],
    *,
    store_paths: bool = True,
) -> Vicinity:
    """Assemble a :class:`Vicinity` from a truncated-traversal result.

    Restricts the stored distance table to exactly the vicinity members
    for unweighted traversals (where ``dist`` already equals the member
    set) while keeping any extra settled entries produced by weighted
    traversals — those are required for path reconstruction.
    """
    member_set = frozenset(gamma)
    boundary = compute_boundary(list(gamma), member_set, adjacency)
    return Vicinity(
        node=node,
        radius=radius,
        dist=dist,
        pred=pred if store_paths else {},
        members=member_set,
        boundary=boundary,
    )
