"""The versioned single-file binary container for flat array stores.

``.npz`` (PR 2-4's container) decompresses every array into fresh heap
memory on load — fine for archival, fatal for startup latency once the
store outgrows cache.  This module is the mmap-first replacement, the
same direction :mod:`repro.io.binary` takes for edge lists:

* a fixed prefix — magic, format version, header length;
* a JSON header carrying caller metadata plus an array table of
  ``name -> (offset, shape, dtype)``;
* the raw array bytes, each 64-byte aligned, uncompressed.

``read_flat_file(path, mmap=True)`` maps the file once (``mode="r"``)
and returns zero-copy read-only views: nothing is faulted in until a
query touches it, every process mapping the same file shares pages
through the OS page cache, and startup cost is the header parse.  With
``mmap=False`` the arrays are read eagerly into private memory (the
portable load for callers that will mutate or outlive the file).

The container is deliberately dumb: what the arrays *mean* (the oracle
store schema, dtype policy, sortedness guarantees) is the caller's
header contract — see :mod:`repro.io.oracle_store`.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Mapping, Union

import numpy as np

from repro.exceptions import SerializationError

PathLike = Union[str, Path]

#: First bytes of every flat container file.
FLAT_MAGIC = b"REPROFLT"
#: Bump on any layout change; readers reject newer versions loudly.
FLAT_FORMAT_VERSION = 1

#: Per-array byte alignment inside the payload (cache-line sized, and a
#: multiple of every numpy itemsize, so views are always aligned).
_ALIGN = 64
#: magic + uint32 version + uint64 header length.
_PREFIX = struct.Struct("<8sIQ")


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def is_flat_file(path: PathLike) -> bool:
    """Whether ``path`` starts with the flat-container magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(FLAT_MAGIC)) == FLAT_MAGIC
    except OSError:
        return False


def write_flat_file(
    path: PathLike,
    arrays: Mapping[str, np.ndarray],
    meta: dict,
    *,
    kind: str,
) -> None:
    """Write ``arrays`` + ``meta`` as one aligned binary container.

    ``kind`` namespaces the schema (e.g. ``"vicinity-oracle"``) so a
    reader can reject a structurally valid file of the wrong flavour.
    Array offsets in the header are relative to the payload base, which
    itself is 64-byte aligned — so every array is absolutely aligned
    and directly mmap-viewable.
    """
    table: dict[str, list] = {}
    payload: dict[str, np.ndarray] = {}
    offset = 0
    for name, array in arrays.items():
        array = np.asarray(array)
        shape = list(array.shape)  # ascontiguousarray promotes 0-d to 1-d
        array = np.ascontiguousarray(array)
        payload[name] = array
        table[name] = [offset, shape, array.dtype.str]
        offset = _aligned(offset + array.nbytes)
    header = json.dumps(
        {"kind": kind, "meta": meta, "arrays": table},
        separators=(",", ":"),
    ).encode("utf-8")
    base = _aligned(_PREFIX.size + len(header))
    with open(path, "wb") as fh:
        fh.write(_PREFIX.pack(FLAT_MAGIC, FLAT_FORMAT_VERSION, len(header)))
        fh.write(header)
        fh.write(b"\0" * (base - _PREFIX.size - len(header)))
        position = 0
        for name, array in payload.items():
            start = table[name][0]
            fh.write(b"\0" * (start - position))
            # tofile streams the contiguous buffer — no transient
            # bytes copy of a possibly multi-GB array.
            array.tofile(fh)
            position = start + array.nbytes


def read_flat_header(path: PathLike) -> tuple[dict, int]:
    """Parse the container header; returns ``(header_dict, payload_base)``.

    Raises:
        SerializationError: not a flat container, or a newer format
            version than this reader understands.
    """
    with open(path, "rb") as fh:
        prefix = fh.read(_PREFIX.size)
        if len(prefix) < _PREFIX.size or prefix[:8] != FLAT_MAGIC:
            raise SerializationError(f"{path} is not a flat array container")
        _, version, header_len = _PREFIX.unpack(prefix)
        if version > FLAT_FORMAT_VERSION:
            raise SerializationError(
                f"{path} is flat-container format v{version}; this build "
                f"reads up to v{FLAT_FORMAT_VERSION}"
            )
        try:
            header = json.loads(fh.read(header_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(f"{path} has a corrupt header: {exc}")
    return header, _aligned(_PREFIX.size + int(header_len))


def read_flat_file(
    path: PathLike, *, mmap: bool = False, expect_kind: str = None
) -> tuple[dict[str, np.ndarray], dict, str]:
    """Load a container; returns ``(arrays, meta, kind)``.

    With ``mmap=True`` the arrays are read-only views over one shared
    ``np.memmap`` of the whole file — zero-copy, page-cache-backed, and
    kept alive by each view's ``base`` chain, so the bundle needs no
    explicit lifetime management.  With ``mmap=False`` each array is
    read eagerly into fresh private memory.

    Raises:
        SerializationError: wrong magic/version/kind or a truncated
            payload.
    """
    header, base = read_flat_header(path)
    kind = header.get("kind", "")
    if expect_kind is not None and kind != expect_kind:
        raise SerializationError(
            f"{path} holds a {kind!r} store, expected {expect_kind!r}"
        )
    arrays: dict[str, np.ndarray] = {}
    if mmap:
        buf = np.memmap(path, dtype=np.uint8, mode="r")
        for name, (offset, shape, dtype_str) in header["arrays"].items():
            dtype = np.dtype(dtype_str)
            end = base + offset + int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            if end > buf.size:
                raise SerializationError(f"{path} is truncated at array {name!r}")
            arrays[name] = np.ndarray(
                tuple(shape), dtype=dtype, buffer=buf, offset=base + offset
            )
    else:
        with open(path, "rb") as fh:
            for name, (offset, shape, dtype_str) in header["arrays"].items():
                dtype = np.dtype(dtype_str)
                count = int(np.prod(shape, dtype=np.int64))
                fh.seek(base + offset)
                flat = np.fromfile(fh, dtype=dtype, count=count)
                if flat.size != count:
                    raise SerializationError(
                        f"{path} is truncated at array {name!r}"
                    )
                arrays[name] = flat.reshape(tuple(shape))
    return arrays, header.get("meta", {}), kind
