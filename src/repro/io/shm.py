"""Worker-shared numpy arrays: one shm segment, or one mapped file.

The process-pool shard backend shares its index arrays with workers in
one of two ways, both addressed by a small picklable *spec*:

* :class:`SharedArrayBundle` — the index is **copied** once into a
  single ``multiprocessing.shared_memory`` segment; workers rebuild
  zero-copy read-only views from the spec's segment name plus
  per-array ``(offset, shape, dtype)``.  The right tool when the index
  exists only in memory (built this run, or loaded from a legacy
  archive).
* :class:`MappedArrayBundle` — the index already lives in a flat
  binary store file (:mod:`repro.io.flatfile`), so nothing is copied
  anywhere: every worker maps the file read-only and the OS page cache
  is the shared memory.  Startup is O(header) per worker and pages are
  shared machine-wide, including with unrelated serving processes.

:func:`attach_bundle` dispatches a spec to the right class, which is
all a worker entry point needs to know.

Lifecycle: exactly one :class:`SharedArrayBundle` owns the segment (the
one returned by :meth:`SharedArrayBundle.create`); its ``close()``
unlinks the segment.  Attached bundles (:meth:`SharedArrayBundle.attach`)
only drop their mapping.  If the owning process is SIGKILLed the segment
can outlive it under ``/dev/shm`` until the OS reclaims it — the
``repro-paths serve`` front end closes the backend in a ``finally`` for
exactly this reason.  Mapped bundles have no such hazard: dropping the
views releases the mapping, and the file persists by design.
"""

from __future__ import annotations

import os
import time
from multiprocessing import shared_memory
from typing import Callable, Mapping, Optional

import numpy as np

from repro.exceptions import SerializationError

#: Byte alignment of each array inside the segment (cache-line sized).
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrayBundle:
    """Named read-only numpy views over one shared-memory segment."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        arrays: dict[str, np.ndarray],
        spec: dict,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.arrays = arrays
        self.spec = spec
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedArrayBundle":
        """Copy ``arrays`` into a fresh segment; returns the owning bundle."""
        layout: dict[str, tuple[int, tuple, str]] = {}
        offset = 0
        sources: dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            sources[name] = array
            layout[name] = (offset, tuple(array.shape), array.dtype.str)
            offset = _aligned(offset + array.nbytes)
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        views = {}
        for name, array in sources.items():
            view = _view(shm, *layout[name])
            if array.size:
                np.copyto(view, array, casting="no")
            view.flags.writeable = False
            views[name] = view
        spec = {"segment": shm.name, "layout": layout}
        return cls(shm, views, spec, owner=True)

    @classmethod
    def attach(cls, spec: Mapping) -> "SharedArrayBundle":
        """Map an existing segment from its spec (non-owning views)."""
        name = spec["segment"]
        try:
            shm = _attach_untracked(name)
        except FileNotFoundError:
            raise SerializationError(f"shared-memory segment {name!r} is gone")
        views = {}
        for array_name, (offset, shape, dtype) in spec["layout"].items():
            view = _view(shm, offset, shape, dtype)
            view.flags.writeable = False
            views[array_name] = view
        return cls(shm, views, dict(spec), owner=False)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the views and the mapping; the owner also unlinks.

        Any view still referenced elsewhere keeps its buffer exported —
        the mapping then survives until that reference dies, but the
        owner's unlink still removes the segment's name immediately.
        """
        if self._closed:
            return
        self._closed = True
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:
            # A view outlived the bundle; the mapping is freed when the
            # last view is garbage-collected.
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MappedArrayBundle:
    """Read-only views over one memory-mapped flat store file.

    The zero-copy counterpart of :class:`SharedArrayBundle`: instead of
    copying arrays into a segment, every attacher maps the store file
    (``np.memmap(..., mode="r")``) and the page cache shares the bytes
    across processes.  ``meta``/``kind`` carry the file header's
    context so workers need no side channel.
    """

    def __init__(self, path, arrays: dict[str, np.ndarray], meta: dict, kind: str) -> None:
        self.path = str(path)
        self.arrays = arrays
        self.meta = meta
        self.kind = kind
        self.spec = {"mmap_path": self.path}

    @classmethod
    def open(cls, path) -> "MappedArrayBundle":
        """Map a flat store file; arrays fault in lazily on first touch."""
        from repro.io.flatfile import read_flat_file

        arrays, meta, kind = read_flat_file(path, mmap=True)
        return cls(path, arrays, meta, kind)

    def close(self) -> None:
        """Drop the views; the mapping dies with the last reference."""
        self.arrays = {}

    def __enter__(self) -> "MappedArrayBundle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_bundle(spec: Mapping):
    """Rebuild worker-side views from any bundle spec.

    ``{"mmap_path": ...}`` maps the store file; ``{"segment": ...,
    "layout": ...}`` attaches the shared-memory segment.
    """
    if "mmap_path" in spec:
        return MappedArrayBundle.open(spec["mmap_path"])
    return SharedArrayBundle.attach(spec)


#: Control area of a ring: head and tail counters on separate cache
#: lines so producer and consumer never write the same line.
RING_HEADER_BYTES = 2 * _ALIGN

#: Bytes of ring occupied by one frame's length prefix.
_RING_PREFIX = 8

_SPIN_ROUNDS = 64
_YIELD_ROUNDS = 512
_SLEEP_FLOOR = 1e-5
_SLEEP_CEIL = 2e-3

try:
    _sched_yield = os.sched_yield
except AttributeError:  # platforms without sched_yield
    def _sched_yield() -> None:
        time.sleep(0)


class RingDead(SerializationError):
    """Raised when the process on the other end of a ring is gone."""


class RingBuffer:
    """Single-producer single-consumer byte ring over shared memory.

    The ring occupies ``RING_HEADER_BYTES + capacity`` bytes of an
    existing buffer: a 64-byte-aligned *head* counter (total bytes ever
    published by the producer), a *tail* counter on its own cache line
    (total bytes ever consumed), and a ``capacity``-byte data area
    addressed modulo ``capacity``.  Counters increase monotonically, so
    ``head - tail`` is the exact number of unread bytes and no slot
    arithmetic or wrap flag is needed.

    Frames are length-prefixed byte strings.  Both :meth:`push` and
    :meth:`pop` *stream*: a frame larger than the free space (even
    larger than the whole ring) is moved in available-space chunks
    while the peer drains/fills the other side, so there is no maximum
    frame size.  Blocking waits spin briefly then back off to short
    sleeps; an optional ``peer_alive`` callback turns a dead peer into
    :class:`RingDead` instead of an infinite wait.

    One process must be the only pusher and one the only popper —
    coordinator and shard worker each own one direction of a ring pair.
    """

    def __init__(
        self,
        buf,
        offset: int,
        capacity: int,
        *,
        peer_alive: Optional[Callable[[], bool]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self._head = np.frombuffer(buf, dtype=np.uint64, count=1, offset=offset)
        self._tail = np.frombuffer(
            buf, dtype=np.uint64, count=1, offset=offset + _ALIGN
        )
        self._data = np.frombuffer(
            buf, dtype=np.uint8, count=capacity, offset=offset + RING_HEADER_BYTES
        )
        self.capacity = capacity
        self.peer_alive = peer_alive

    @staticmethod
    def region_bytes(capacity: int) -> int:
        """Total buffer bytes one ring of ``capacity`` occupies."""
        return RING_HEADER_BYTES + capacity

    def reset(self) -> None:
        """Zero the counters (creator only, before the peer attaches)."""
        self._head[0] = 0
        self._tail[0] = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def push(
        self,
        payload: bytes,
        *,
        timeout: Optional[float] = None,
        on_stall: Optional[Callable[[], None]] = None,
    ) -> None:
        """Publish one length-prefixed frame, streaming through the ring.

        ``on_stall`` runs each time the ring is found full — the
        coordinator passes a callback that drains ready response
        frames, so a producer blocked here can never deadlock against
        a consumer blocked publishing on the reverse ring.
        """
        frame = np.frombuffer(
            np.uint64(len(payload)).tobytes() + payload, dtype=np.uint8
        )
        total = frame.shape[0]
        sent = 0
        waiter = _Backoff(self.peer_alive, timeout)
        while sent < total:
            head = int(self._head[0])
            free = self.capacity - (head - int(self._tail[0]))
            if free <= 0:
                if on_stall is not None:
                    on_stall()
                waiter.wait()
                continue
            waiter.restart()
            chunk = min(free, total - sent)
            pos = head % self.capacity
            first = min(chunk, self.capacity - pos)
            self._data[pos:pos + first] = frame[sent:sent + first]
            if chunk > first:
                self._data[:chunk - first] = frame[sent + first:sent + chunk]
            self._head[0] = head + chunk
            sent += chunk

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def pop(self, *, timeout: Optional[float] = None) -> bytes:
        """Consume the next frame (blocking; streams oversized frames)."""
        prefix = self._read_exact(_RING_PREFIX, timeout)
        size = int(np.frombuffer(prefix, dtype=np.uint64, count=1)[0])
        return self._read_exact(size, timeout)

    def poll(self) -> bool:
        """True when at least one byte is ready to read."""
        return int(self._head[0]) > int(self._tail[0])

    def drain(self, *, timeout: float = 0.0) -> int:
        """Discard whole frames until the ring stays empty; never hangs.

        Returns the number of frames discarded.  A partial frame left by
        a dead or wedged producer (bytes published but short of the
        promised length) is abandoned once ``timeout`` expires — the
        caller is tearing the ring down, so unread bytes are irrelevant.
        """
        count = 0
        while self.poll():
            try:
                self.pop(timeout=timeout)
            except (TimeoutError, RingDead):
                break
            count += 1
        return count

    def _read_exact(self, size: int, timeout: Optional[float]) -> bytes:
        parts: list[bytes] = []
        got = 0
        waiter = _Backoff(self.peer_alive, timeout)
        while got < size:
            tail = int(self._tail[0])
            ready = int(self._head[0]) - tail
            if ready <= 0:
                waiter.wait()
                continue
            waiter.restart()
            chunk = min(ready, size - got)
            pos = tail % self.capacity
            first = min(chunk, self.capacity - pos)
            parts.append(self._data[pos:pos + first].tobytes())
            if chunk > first:
                parts.append(self._data[:chunk - first].tobytes())
            self._tail[0] = tail + chunk
            got += chunk
        return b"".join(parts)


class _Backoff:
    """Spin, then yield, then sleep — with deadline and peer checks.

    The yield tier is what makes the ring competitive when coordinator
    and workers share cores: ``sched_yield`` hands the timeslice to the
    peer that must fill/drain the ring, where a pure spin would burn
    the whole quantum doing nothing and a sleep would overshoot the
    peer's finish by up to the sleep granularity.
    """

    __slots__ = ("_peer_alive", "_deadline", "_spins", "_sleep")

    def __init__(self, peer_alive, timeout: Optional[float]) -> None:
        self._peer_alive = peer_alive
        self._deadline = None if timeout is None else time.monotonic() + timeout
        self.restart()

    def restart(self) -> None:
        self._spins = 0
        self._sleep = _SLEEP_FLOOR

    def wait(self) -> None:
        self._spins += 1
        if self._spins <= _SPIN_ROUNDS:
            return
        if self._peer_alive is not None and not self._peer_alive():
            raise RingDead("ring peer process is gone")
        if self._deadline is not None and time.monotonic() >= self._deadline:
            raise TimeoutError("timed out waiting on shared-memory ring")
        if self._spins <= _SPIN_ROUNDS + _YIELD_ROUNDS:
            _sched_yield()
            return
        time.sleep(self._sleep)
        self._sleep = min(self._sleep * 2, _SLEEP_CEIL)


def _view(shm: shared_memory.SharedMemory, offset: int, shape, dtype) -> np.ndarray:
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it for cleanup.

    Only the owner may unlink the segment.  Before Python 3.13 (which
    added ``track=False``), *attaching* also registers the name with the
    resource tracker — shared with the parent under multiprocessing —
    so a worker's exit would "clean up" the owner's segment out from
    under it.  Suppressing registration during attach is the documented
    workaround (python/cpython#82300).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register_except_shm(resource_name, rtype):
        if rtype != "shared_memory":
            original(resource_name, rtype)

    resource_tracker.register = register_except_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
