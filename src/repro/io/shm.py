"""Worker-shared numpy arrays: one shm segment, or one mapped file.

The process-pool shard backend shares its index arrays with workers in
one of two ways, both addressed by a small picklable *spec*:

* :class:`SharedArrayBundle` — the index is **copied** once into a
  single ``multiprocessing.shared_memory`` segment; workers rebuild
  zero-copy read-only views from the spec's segment name plus
  per-array ``(offset, shape, dtype)``.  The right tool when the index
  exists only in memory (built this run, or loaded from a legacy
  archive).
* :class:`MappedArrayBundle` — the index already lives in a flat
  binary store file (:mod:`repro.io.flatfile`), so nothing is copied
  anywhere: every worker maps the file read-only and the OS page cache
  is the shared memory.  Startup is O(header) per worker and pages are
  shared machine-wide, including with unrelated serving processes.

:func:`attach_bundle` dispatches a spec to the right class, which is
all a worker entry point needs to know.

Lifecycle: exactly one :class:`SharedArrayBundle` owns the segment (the
one returned by :meth:`SharedArrayBundle.create`); its ``close()``
unlinks the segment.  Attached bundles (:meth:`SharedArrayBundle.attach`)
only drop their mapping.  If the owning process is SIGKILLed the segment
can outlive it under ``/dev/shm`` until the OS reclaims it — the
``repro-paths serve`` front end closes the backend in a ``finally`` for
exactly this reason.  Mapped bundles have no such hazard: dropping the
views releases the mapping, and the file persists by design.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

from repro.exceptions import SerializationError

#: Byte alignment of each array inside the segment (cache-line sized).
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrayBundle:
    """Named read-only numpy views over one shared-memory segment."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        arrays: dict[str, np.ndarray],
        spec: dict,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.arrays = arrays
        self.spec = spec
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedArrayBundle":
        """Copy ``arrays`` into a fresh segment; returns the owning bundle."""
        layout: dict[str, tuple[int, tuple, str]] = {}
        offset = 0
        sources: dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            sources[name] = array
            layout[name] = (offset, tuple(array.shape), array.dtype.str)
            offset = _aligned(offset + array.nbytes)
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        views = {}
        for name, array in sources.items():
            view = _view(shm, *layout[name])
            if array.size:
                np.copyto(view, array, casting="no")
            view.flags.writeable = False
            views[name] = view
        spec = {"segment": shm.name, "layout": layout}
        return cls(shm, views, spec, owner=True)

    @classmethod
    def attach(cls, spec: Mapping) -> "SharedArrayBundle":
        """Map an existing segment from its spec (non-owning views)."""
        name = spec["segment"]
        try:
            shm = _attach_untracked(name)
        except FileNotFoundError:
            raise SerializationError(f"shared-memory segment {name!r} is gone")
        views = {}
        for array_name, (offset, shape, dtype) in spec["layout"].items():
            view = _view(shm, offset, shape, dtype)
            view.flags.writeable = False
            views[array_name] = view
        return cls(shm, views, dict(spec), owner=False)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the views and the mapping; the owner also unlinks.

        Any view still referenced elsewhere keeps its buffer exported —
        the mapping then survives until that reference dies, but the
        owner's unlink still removes the segment's name immediately.
        """
        if self._closed:
            return
        self._closed = True
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:
            # A view outlived the bundle; the mapping is freed when the
            # last view is garbage-collected.
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MappedArrayBundle:
    """Read-only views over one memory-mapped flat store file.

    The zero-copy counterpart of :class:`SharedArrayBundle`: instead of
    copying arrays into a segment, every attacher maps the store file
    (``np.memmap(..., mode="r")``) and the page cache shares the bytes
    across processes.  ``meta``/``kind`` carry the file header's
    context so workers need no side channel.
    """

    def __init__(self, path, arrays: dict[str, np.ndarray], meta: dict, kind: str) -> None:
        self.path = str(path)
        self.arrays = arrays
        self.meta = meta
        self.kind = kind
        self.spec = {"mmap_path": self.path}

    @classmethod
    def open(cls, path) -> "MappedArrayBundle":
        """Map a flat store file; arrays fault in lazily on first touch."""
        from repro.io.flatfile import read_flat_file

        arrays, meta, kind = read_flat_file(path, mmap=True)
        return cls(path, arrays, meta, kind)

    def close(self) -> None:
        """Drop the views; the mapping dies with the last reference."""
        self.arrays = {}

    def __enter__(self) -> "MappedArrayBundle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_bundle(spec: Mapping):
    """Rebuild worker-side views from any bundle spec.

    ``{"mmap_path": ...}`` maps the store file; ``{"segment": ...,
    "layout": ...}`` attaches the shared-memory segment.
    """
    if "mmap_path" in spec:
        return MappedArrayBundle.open(spec["mmap_path"])
    return SharedArrayBundle.attach(spec)


def _view(shm: shared_memory.SharedMemory, offset: int, shape, dtype) -> np.ndarray:
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it for cleanup.

    Only the owner may unlink the segment.  Before Python 3.13 (which
    added ``track=False``), *attaching* also registers the name with the
    resource tracker — shared with the parent under multiprocessing —
    so a worker's exit would "clean up" the owner's segment out from
    under it.  Suppressing registration during attach is the documented
    workaround (python/cpython#82300).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register_except_shm(resource_name, rtype):
        if rtype != "shared_memory":
            original(resource_name, rtype)

    resource_tracker.register = register_except_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
