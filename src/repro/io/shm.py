"""One shared-memory segment holding many named numpy arrays.

The process-pool shard backend loads (or flattens) the index once,
copies every array into a single ``multiprocessing.shared_memory``
segment, and hands workers a small picklable *spec* — segment name plus
per-array ``(offset, shape, dtype)`` — from which they rebuild zero-copy
read-only views.  No worker ever pickles or re-loads the index.

Lifecycle: exactly one :class:`SharedArrayBundle` owns the segment (the
one returned by :meth:`SharedArrayBundle.create`); its ``close()``
unlinks the segment.  Attached bundles (:meth:`SharedArrayBundle.attach`)
only drop their mapping.  If the owning process is SIGKILLed the segment
can outlive it under ``/dev/shm`` until the OS reclaims it — the
``repro-paths serve`` front end closes the backend in a ``finally`` for
exactly this reason.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

from repro.exceptions import SerializationError

#: Byte alignment of each array inside the segment (cache-line sized).
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrayBundle:
    """Named read-only numpy views over one shared-memory segment."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        arrays: dict[str, np.ndarray],
        spec: dict,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.arrays = arrays
        self.spec = spec
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedArrayBundle":
        """Copy ``arrays`` into a fresh segment; returns the owning bundle."""
        layout: dict[str, tuple[int, tuple, str]] = {}
        offset = 0
        sources: dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            sources[name] = array
            layout[name] = (offset, tuple(array.shape), array.dtype.str)
            offset = _aligned(offset + array.nbytes)
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        views = {}
        for name, array in sources.items():
            view = _view(shm, *layout[name])
            if array.size:
                np.copyto(view, array, casting="no")
            view.flags.writeable = False
            views[name] = view
        spec = {"segment": shm.name, "layout": layout}
        return cls(shm, views, spec, owner=True)

    @classmethod
    def attach(cls, spec: Mapping) -> "SharedArrayBundle":
        """Map an existing segment from its spec (non-owning views)."""
        name = spec["segment"]
        try:
            shm = _attach_untracked(name)
        except FileNotFoundError:
            raise SerializationError(f"shared-memory segment {name!r} is gone")
        views = {}
        for array_name, (offset, shape, dtype) in spec["layout"].items():
            view = _view(shm, offset, shape, dtype)
            view.flags.writeable = False
            views[array_name] = view
        return cls(shm, views, dict(spec), owner=False)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the views and the mapping; the owner also unlinks.

        Any view still referenced elsewhere keeps its buffer exported —
        the mapping then survives until that reference dies, but the
        owner's unlink still removes the segment's name immediately.
        """
        if self._closed:
            return
        self._closed = True
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:
            # A view outlived the bundle; the mapping is freed when the
            # last view is garbage-collected.
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _view(shm: shared_memory.SharedMemory, offset: int, shape, dtype) -> np.ndarray:
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it for cleanup.

    Only the owner may unlink the segment.  Before Python 3.13 (which
    added ``track=False``), *attaching* also registers the name with the
    resource tracker — shared with the parent under multiprocessing —
    so a worker's exit would "clean up" the owner's segment out from
    under it.  Suppressing registration during attach is the documented
    workaround (python/cpython#82300).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register_except_shm(resource_name, rtype):
        if rtype != "shared_memory":
            original(resource_name, rtype)

    resource_tracker.register = register_except_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
