"""Round-trip persistence for a built :class:`VicinityIndex`.

The offline phase is the expensive part of the paper's design; a
deployment builds once and serves forever.  This module flattens the
per-node hash tables into offset-indexed arrays (the standard CSR-of-
dicts trick) so the whole index round-trips through one compressed
``.npz`` with no pickling.

Layout (version 1):

* ``config``      — JSON of the :class:`OracleConfig`;
* ``graph_*``     — the indexed graph's CSR arrays;
* ``landmarks``   — landmark ids; ``landmark_scale`` — calibrated scale;
* ``vic_offsets / vic_nodes / vic_dists / vic_preds`` — every node's
  distance/predecessor table, concatenated;
* ``member_offsets / member_nodes`` — vicinity membership (differs from
  the distance table only on weighted graphs);
* ``boundary_offsets / boundary_nodes`` — boundary lists;
* ``radii``       — per-node vicinity radius (NaN = none);
* ``table_dist / table_parent`` — stacked landmark tables.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.config import OracleConfig
from repro.core.index import LandmarkTable, VicinityIndex
from repro.core.landmarks import landmark_set_from_ids
from repro.core.vicinity import Vicinity
from repro.exceptions import SerializationError
from repro.graph.csr import CSRGraph

PathLike = Union[str, Path]

_MAGIC = "repro-oracle-v1"


def save_index(index: VicinityIndex, path: PathLike) -> None:
    """Serialise a built index (graph included) to ``.npz``."""
    graph = index.graph
    n = graph.n
    weighted = graph.is_weighted

    vic_offsets = np.zeros(n + 1, dtype=np.int64)
    member_offsets = np.zeros(n + 1, dtype=np.int64)
    boundary_offsets = np.zeros(n + 1, dtype=np.int64)
    nodes_parts: list[np.ndarray] = []
    dist_parts: list[np.ndarray] = []
    pred_parts: list[np.ndarray] = []
    member_parts: list[np.ndarray] = []
    boundary_parts: list[np.ndarray] = []
    radii = np.full(n, np.nan, dtype=np.float64)

    dist_dtype = np.float64 if weighted else np.int32
    for u in range(n):
        vic = index.vicinities[u]
        if vic.radius is not None:
            radii[u] = float(vic.radius)
        keys = np.fromiter(vic.dist.keys(), dtype=np.int64, count=len(vic.dist))
        values = np.fromiter(
            (vic.dist[k] for k in keys.tolist()), dtype=dist_dtype, count=keys.size
        )
        preds = np.fromiter(
            (vic.pred.get(k, -1) for k in keys.tolist()), dtype=np.int64, count=keys.size
        )
        nodes_parts.append(keys)
        dist_parts.append(values)
        pred_parts.append(preds)
        vic_offsets[u + 1] = vic_offsets[u] + keys.size
        members = np.fromiter(vic.members, dtype=np.int64, count=len(vic.members))
        member_parts.append(np.sort(members))
        member_offsets[u + 1] = member_offsets[u] + members.size
        boundary = np.asarray(vic.boundary, dtype=np.int64)
        boundary_parts.append(boundary)
        boundary_offsets[u + 1] = boundary_offsets[u] + boundary.size

    landmark_ids = index.landmarks.ids
    if index.tables:
        table_dist = np.stack([index.tables[l].dist for l in landmark_ids.tolist()])
        parents = [index.tables[l].parent for l in landmark_ids.tolist()]
        if any(p is None for p in parents):
            table_parent = np.zeros((0, 0), dtype=np.int32)
        else:
            table_parent = np.stack(parents)
    else:
        table_dist = np.zeros((0, 0), dtype=dist_dtype)
        table_parent = np.zeros((0, 0), dtype=np.int32)

    config = dict(asdict(index.config))
    payload = {
        "magic": np.asarray(_MAGIC),
        "config": np.asarray(json.dumps(config)),
        "graph_n": np.asarray(n, dtype=np.int64),
        "graph_indptr": graph.indptr,
        "graph_indices": graph.indices,
        "landmarks": landmark_ids,
        "landmark_scale": np.asarray(index.landmarks.scale, dtype=np.float64),
        "vic_offsets": vic_offsets,
        "vic_nodes": _concat(nodes_parts, np.int64),
        "vic_dists": _concat(dist_parts, dist_dtype),
        "vic_preds": _concat(pred_parts, np.int64),
        "member_offsets": member_offsets,
        "member_nodes": _concat(member_parts, np.int64),
        "boundary_offsets": boundary_offsets,
        "boundary_nodes": _concat(boundary_parts, np.int64),
        "radii": radii,
        "table_dist": table_dist,
        "table_parent": table_parent,
    }
    if weighted:
        payload["graph_weights"] = graph.weights
    np.savez_compressed(path, **payload)


def load_index(path: PathLike) -> VicinityIndex:
    """Load an index saved by :func:`save_index`.

    Raises:
        SerializationError: on unknown or corrupt files.
    """
    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _MAGIC:
            raise SerializationError(f"{path} is not a {_MAGIC} snapshot")
        config_dict = json.loads(str(data["config"]))
        config = OracleConfig(**config_dict)
        weights = data["graph_weights"] if "graph_weights" in data else None
        graph = CSRGraph(
            int(data["graph_n"]), data["graph_indptr"], data["graph_indices"], weights
        )
        landmarks = landmark_set_from_ids(graph, data["landmarks"].tolist(), config.alpha)
        landmarks.scale = float(data["landmark_scale"])

        vic_offsets = data["vic_offsets"]
        vic_nodes = data["vic_nodes"]
        vic_dists = data["vic_dists"]
        vic_preds = data["vic_preds"]
        member_offsets = data["member_offsets"]
        member_nodes = data["member_nodes"]
        boundary_offsets = data["boundary_offsets"]
        boundary_nodes = data["boundary_nodes"]
        radii = data["radii"]
        weighted = weights is not None

        vicinities: list[Vicinity] = []
        for u in range(graph.n):
            lo, hi = int(vic_offsets[u]), int(vic_offsets[u + 1])
            keys = vic_nodes[lo:hi].tolist()
            values = vic_dists[lo:hi].tolist()
            preds = vic_preds[lo:hi].tolist()
            dist = dict(zip(keys, values))
            pred = {k: p for k, p in zip(keys, preds) if p >= 0}
            mlo, mhi = int(member_offsets[u]), int(member_offsets[u + 1])
            members = frozenset(member_nodes[mlo:mhi].tolist())
            blo, bhi = int(boundary_offsets[u]), int(boundary_offsets[u + 1])
            boundary = boundary_nodes[blo:bhi].tolist()
            radius = None if np.isnan(radii[u]) else radii[u]
            if radius is not None and not weighted:
                radius = int(radius)
            vicinities.append(
                Vicinity(
                    node=u,
                    radius=radius,
                    dist=dist,
                    pred=pred,
                    members=members,
                    boundary=boundary,
                )
            )

        tables: dict[int, LandmarkTable] = {}
        table_dist = data["table_dist"]
        table_parent = data["table_parent"]
        if table_dist.size:
            has_parents = table_parent.size > 0
            for row, landmark in enumerate(landmarks.ids.tolist()):
                parent = table_parent[row] if has_parents else None
                tables[landmark] = LandmarkTable(
                    landmark=landmark, dist=table_dist[row], parent=parent
                )
        return VicinityIndex(graph, config, landmarks, vicinities, tables)


def _concat(parts: list[np.ndarray], dtype) -> np.ndarray:
    if not parts:
        return np.zeros(0, dtype=dtype)
    return np.concatenate(parts).astype(dtype, copy=False)
