"""Round-trip persistence for a built :class:`VicinityIndex`.

The offline phase is the expensive part of the paper's design; a
deployment builds once and serves forever.  This module flattens the
per-node hash tables into offset-indexed arrays (the standard CSR-of-
dicts trick) and persists them in the single-file aligned binary
container of :mod:`repro.io.flatfile` (format version 1, kind
``"vicinity-oracle"`` / ``"directed-oracle"``):

* header meta — ``n``, ``weighted`` and the :class:`OracleConfig`
  mapping (``alpha``/``fallback`` for the directed store);
* ``graph_*``   — the indexed graph's CSR arrays;
* ``landmarks`` — landmark ids; ``landmark_scale`` — calibrated scale;
* ``vic_offsets / vic_nodes / vic_dists / vic_preds`` — every node's
  distance/predecessor table, concatenated, per-slice sorted by node
  id, at the compact dtypes of
  :func:`repro.core.flat.compact_store_arrays`;
* ``member_offsets / member_nodes`` — vicinity membership;
* ``boundary_offsets / boundary_nodes / boundary_dists`` — boundary
  lists with their precomputed distances;
* ``radii``     — per-node vicinity radius (NaN = none);
* ``table_dist / table_parent`` — stacked landmark tables;
* ``landmark_row`` — node id -> table row (-1 for non-landmarks).

Because the file holds the *probe-ready* layout (sorted slices,
derived boundary distances, row map), ``load_flat_index(mmap=True)``
returns memory-mapped views that serve queries with no O(entries)
startup work at all — workers mapping the same file share pages
through the OS page cache.  The PR 2-4 compressed ``.npz`` layout
(``repro-oracle-v1``) still loads through every reader here, upconverted
to the compact in-memory layout; ``save_index(..., format="npz")``
keeps writing it for archival interchange.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.config import OracleConfig
from repro.core.flat import FlatIndex, flatten_index
from repro.core.index import LandmarkTable, VicinityIndex
from repro.core.landmarks import landmark_set_from_ids
from repro.core.vicinity import Vicinity
from repro.exceptions import SerializationError
from repro.graph.csr import CSRGraph
from repro.io.flatfile import is_flat_file, read_flat_file, write_flat_file

PathLike = Union[str, Path]

_MAGIC = "repro-oracle-v1"
_DIRECTED_MAGIC = "repro-directed-oracle-v1"

#: ``kind`` strings namespacing the flat-container schemas.
FLAT_KIND_INDEX = "vicinity-oracle"
FLAT_KIND_DIRECTED = "directed-oracle"

#: Derived columns the single-file layout persists beyond
#: :data:`FLAT_STORE_ARRAYS`, so memory-mapped loads skip every
#: O(entries) derivation pass.
PROBE_EXTRA_ARRAYS = ("boundary_dists", "landmark_row")

#: Per-orientation arrays persisted by :func:`save_directed_oracle`
#: (stored twice, prefixed ``out_`` / ``in_``).
DIRECTED_SIDE_ARRAYS = (
    "vic_offsets",
    "vic_nodes",
    "vic_dists",
    "vic_preds",
    "member_offsets",
    "member_nodes",
    "boundary_offsets",
    "boundary_nodes",
    "radii",
    "table_dist",
    "table_parent",
)

#: Index arrays persisted by :func:`save_index` (the flattened layout,
#: produced by :func:`repro.core.flat.flatten_index`).
FLAT_STORE_ARRAYS = (
    "landmarks",
    "landmark_scale",
    "vic_offsets",
    "vic_nodes",
    "vic_dists",
    "vic_preds",
    "member_offsets",
    "member_nodes",
    "boundary_offsets",
    "boundary_nodes",
    "radii",
    "table_dist",
    "table_parent",
)


def _resolve_format(path: PathLike, format) -> str:
    """``format=None`` infers from the suffix: ``.npz`` keeps writing
    the legacy archive (old callers and checkouts read it unchanged),
    anything else gets the flat container."""
    if format is None:
        return "npz" if str(path).endswith(".npz") else "flat"
    if format not in ("flat", "npz"):
        raise SerializationError(
            f"unknown oracle store format {format!r}; choose 'flat' or 'npz'"
        )
    return format


def save_index(index: VicinityIndex, path: PathLike, *, format: str = None) -> None:
    """Serialise a built index (graph included).

    ``format="flat"`` writes the single-file aligned binary container —
    the probe-ready layout every loader (including ``mmap=True``)
    consumes directly.  ``format="npz"`` writes the PR 2-4 compressed
    archive, widened back to the int64/-1-marker layout so pre-compact
    checkouts read it bit-compatibly.  The default infers from the
    path: ``.npz`` stays an archive, everything else is flat.  Both
    round-trip through :func:`load_index` / :func:`load_flat_index`.
    """
    from repro.core.flat import widen_store

    graph = index.graph
    config = dict(asdict(index.config))
    store = flatten_index(index)
    if _resolve_format(path, format) == "npz":
        payload = {
            "magic": np.asarray(_MAGIC),
            "config": np.asarray(json.dumps(config)),
            "graph_n": np.asarray(graph.n, dtype=np.int64),
            "graph_indptr": graph.indptr,
            "graph_indices": graph.indices,
            # The legacy magic promises the legacy layout: int64 ids
            # and -1 markers, which sign-based old readers require.
            **widen_store(store),
        }
        if graph.is_weighted:
            payload["graph_weights"] = graph.weights
        np.savez_compressed(path, **payload)
        return
    # Persist the probe layout: a FlatIndex guarantees sorted slices
    # and carries the derived boundary distances and row map.  Reuse a
    # cached one, else derive from the store just flattened — never
    # through FlatIndex.from_index, which would re-run the whole
    # record-extraction pass on a dict-built index.
    flat = getattr(index, "_flat_index", None)
    if flat is None:
        flat = FlatIndex.from_store_arrays(
            store,
            n=graph.n,
            weighted=graph.is_weighted,
            store_paths=index.config.store_paths,
        )
        index._flat_index = flat
    arrays = {name: store[name] for name in FLAT_STORE_ARRAYS}
    for name in ("vic_nodes", "vic_dists", "vic_preds"):
        arrays[name] = flat.arrays[name]
    arrays["boundary_dists"] = flat.boundary_dists
    arrays["landmark_row"] = flat.landmark_row
    arrays["graph_indptr"] = graph.indptr
    arrays["graph_indices"] = graph.indices
    if graph.is_weighted:
        arrays["graph_weights"] = graph.weights
    meta = {
        "n": graph.n,
        "weighted": graph.is_weighted,
        "config": config,
    }
    write_flat_file(path, arrays, meta, kind=FLAT_KIND_INDEX)


def load_flat_arrays(
    path: PathLike, *, include_graph: bool = False
) -> tuple[dict[str, np.ndarray], dict]:
    """Load a saved index's raw offset-indexed arrays, dict-free.

    The serving backends probe the flattened arrays directly (see
    :class:`repro.core.flat.FlatIndex`), so they can skip
    :func:`load_index`'s per-node dict materialisation — the expensive
    part of loading — entirely.  The O(|E|) graph CSR arrays are needed
    at query time by *nothing* in the flat serving path, so they stay
    compressed unless ``include_graph`` asks for them.

    Returns:
        ``(arrays, meta)`` — the :data:`FLAT_STORE_ARRAYS` (plus the
        probe extras on flat-container files, plus the graph CSR
        arrays when ``include_graph``), and a metadata dict with
        ``n``, ``weighted``, ``store_paths`` and the full ``config``
        mapping.

    Raises:
        SerializationError: on unknown or corrupt files.
    """
    if is_flat_file(path):
        raw, file_meta, _ = read_flat_file(path, expect_kind=FLAT_KIND_INDEX)
        names = FLAT_STORE_ARRAYS + PROBE_EXTRA_ARRAYS
        missing = [name for name in names if name not in raw]
        if missing:
            raise SerializationError(f"{path} is missing arrays: {missing}")
        arrays = {name: raw[name] for name in names}
        if include_graph:
            for name in ("graph_indptr", "graph_indices", "graph_weights"):
                if name in raw:
                    arrays[name] = raw[name]
        config = file_meta["config"]
        meta = {
            "n": int(file_meta["n"]),
            "weighted": bool(file_meta["weighted"]),
            "store_paths": bool(config.get("store_paths", True)),
            "config": config,
        }
        return arrays, meta
    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _MAGIC:
            raise SerializationError(f"{path} is not a {_MAGIC} snapshot")
        config = json.loads(str(data["config"]))
        arrays = {name: data[name] for name in FLAT_STORE_ARRAYS}
        weighted = "graph_weights" in data
        if include_graph:
            arrays["graph_indptr"] = data["graph_indptr"]
            arrays["graph_indices"] = data["graph_indices"]
            if weighted:
                arrays["graph_weights"] = data["graph_weights"]
        meta = {
            "n": int(data["graph_n"]),
            "weighted": weighted,
            "store_paths": bool(config.get("store_paths", True)),
            "config": config,
        }
    return arrays, meta


def load_flat_index(path: PathLike, *, mmap: bool = False):
    """Load a saved index straight into a probe-ready ``FlatIndex``.

    The dict-free loading path of the serving layer: the shard
    backends' ``from_saved`` constructors and any
    :class:`~repro.core.engine.FlatQueryEngine` consumer go through
    this instead of :func:`load_index`, skipping per-node dict
    materialisation entirely.

    With ``mmap=True`` (flat-container files only) the index's arrays
    are read-only memory-mapped views: nothing beyond the O(n) offset
    diffs is touched at load time, and every process mapping the same
    file shares pages through the OS page cache instead of holding a
    private copy.

    Raises:
        SerializationError: unknown/corrupt files, or ``mmap=True`` on
            a legacy ``.npz`` store (re-save with ``format="flat"``).
    """
    if is_flat_file(path):
        raw, file_meta, _ = read_flat_file(
            path, mmap=mmap, expect_kind=FLAT_KIND_INDEX
        )
        config = file_meta["config"]
        return FlatIndex.from_probe_arrays(
            raw,
            n=int(file_meta["n"]),
            weighted=bool(file_meta["weighted"]),
            store_paths=bool(config.get("store_paths", True)),
        )
    if mmap:
        raise SerializationError(
            f"{path} is a legacy compressed .npz store and cannot be "
            "memory-mapped; re-save it with save_index(..., format='flat')"
        )
    arrays, meta = load_flat_arrays(path)
    return FlatIndex.from_store_arrays(
        arrays,
        n=meta["n"],
        weighted=meta["weighted"],
        store_paths=meta["store_paths"],
    )


def load_store_config(path: PathLike) -> dict:
    """The saved :class:`OracleConfig` mapping, without loading arrays.

    Flat-container files answer from the header; legacy ``.npz`` files
    decompress only their ``config`` member.
    """
    if is_flat_file(path):
        from repro.io.flatfile import read_flat_header

        header, _ = read_flat_header(path)
        return header["meta"]["config"]
    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _MAGIC:
            raise SerializationError(f"{path} is not a {_MAGIC} snapshot")
        return json.loads(str(data["config"]))


def load_query_engine(path: PathLike, *, mmap: bool = False, kernels: str = None):
    """Load a saved index as a ready single-machine query engine.

    The dict-free, graph-free serving path for an unsharded deployment:
    a :class:`~repro.core.engine.FlatQueryEngine` over the stored
    arrays, configured with the index's saved kernel.  Fallback
    searches are unavailable (they need the input graph), exactly as in
    sharded serving; misses are reported as such.  With ``mmap=True``
    the arrays are memory-mapped views (see :func:`load_flat_index`).
    ``kernels`` picks the compute tier (``"numpy"``/``"native"``;
    default auto-detect).
    """
    from repro.core.engine import FlatQueryEngine

    config = load_store_config(path)
    return FlatQueryEngine(
        load_flat_index(path, mmap=mmap),
        kernel=config.get("kernel", "boundary-smaller"),
        strict_paths=True,
        kernels=kernels,
    )


def save_directed_oracle(oracle, path: PathLike, *, format: str = None) -> None:
    """Serialise a :class:`~repro.core.directed.DirectedVicinityOracle`.

    Persists the digraph CSR (both orientations) plus each side's flat
    arrays in the same offset-indexed layout :func:`save_index` uses —
    the PR 3 follow-up that lets a loaded directed oracle serve its
    first query with no flattening pass at all.  A flat-built oracle
    saves the arrays it already holds; a dict-built one flattens once
    (cached on the oracle).  The single-file container (default for
    non-``.npz`` paths) also carries each side's probe-ready extras
    (sorted slices, boundary distances, landmark row map) so a
    memory-mapped load starts in O(n); ``format="npz"`` keeps the PR 4
    archive layout, widened back to int64/-1 markers for old readers.
    """
    from repro.core.flat import directed_side_flat_index, widen_store

    graph = oracle.graph
    out_store, in_store = oracle.flat_side_stores()
    meta = {"alpha": float(oracle.alpha), "fallback": oracle.fallback}
    if _resolve_format(path, format) == "npz":
        payload = {
            "magic": np.asarray(_DIRECTED_MAGIC),
            "meta": np.asarray(json.dumps(meta)),
            "graph_n": np.asarray(graph.n, dtype=np.int64),
            "out_indptr": graph.out_indptr,
            "out_indices": graph.out_indices,
            "in_indptr": graph.in_indptr,
            "in_indices": graph.in_indices,
            "landmarks": oracle.landmark_ids,
        }
        for prefix, store in (("out", out_store), ("in", in_store)):
            wide = widen_store(store)
            for name in DIRECTED_SIDE_ARRAYS:
                payload[f"{prefix}_{name}"] = wide[name]
        np.savez_compressed(path, **payload)
        return
    arrays = {
        "out_indptr": graph.out_indptr,
        "out_indices": graph.out_indices,
        "in_indptr": graph.in_indptr,
        "in_indices": graph.in_indices,
        "landmarks": np.ascontiguousarray(oracle.landmark_ids, dtype=np.int64),
    }
    for prefix, store in (("out", out_store), ("in", in_store)):
        side_flat = directed_side_flat_index(store, graph.n)
        for name in DIRECTED_SIDE_ARRAYS:
            arrays[f"{prefix}_{name}"] = store[name]
        # Probe-ready overrides/extras (sorted slices, derived columns).
        for name in ("vic_nodes", "vic_dists", "vic_preds"):
            arrays[f"{prefix}_{name}"] = side_flat.arrays[name]
        arrays[f"{prefix}_boundary_dists"] = side_flat.boundary_dists
    # The row map depends only on (landmarks, n) and is shared by both
    # sides, so derive it once rather than borrowing either side's.
    landmark_row = np.full(graph.n, -1, dtype=np.int32)
    landmark_row[arrays["landmarks"]] = np.arange(
        arrays["landmarks"].size, dtype=np.int32
    )
    arrays["landmark_row"] = landmark_row
    write_flat_file(
        path, arrays, {**meta, "n": graph.n}, kind=FLAT_KIND_DIRECTED
    )


def load_directed_oracle(path: PathLike, *, mmap: bool = False):
    """Load a directed oracle saved by :func:`save_directed_oracle`.

    Dict-free: both engine sides come straight from the stored arrays
    (per-node records materialise lazily only if the record API is
    touched), so queries are served immediately without re-flattening
    either orientation.  With ``mmap=True`` (single-file container
    only) both sides and the digraph CSR are read-only memory-mapped
    views sharing pages through the OS page cache.

    Raises:
        SerializationError: on unknown or corrupt files, or
            ``mmap=True`` on a legacy ``.npz`` store.
    """
    from repro.core.directed import DirectedVicinityOracle
    from repro.core.landmarks import flag_bytes

    if is_flat_file(path):
        raw, meta, _ = read_flat_file(
            path, mmap=mmap, expect_kind=FLAT_KIND_DIRECTED
        )
        n = int(meta["n"])
        ids = np.asarray(raw["landmarks"])
        sides = []
        for prefix in ("out", "in"):
            store = {
                name: raw[f"{prefix}_{name}"] for name in DIRECTED_SIDE_ARRAYS
            }
            store["boundary_dists"] = raw[f"{prefix}_boundary_dists"]
            store["landmark_row"] = raw["landmark_row"]
            store["landmarks"] = ids
            sides.append(store)
        return DirectedVicinityOracle.from_side_stores(
            _digraph_from_arrays(raw, n),
            float(meta["alpha"]),
            ids,
            flag_bytes(n, ids),
            sides[0],
            sides[1],
            meta["fallback"],
        )
    if mmap:
        raise SerializationError(
            f"{path} is a legacy compressed .npz store and cannot be "
            "memory-mapped; re-save it with save_directed_oracle(..., "
            "format='flat')"
        )
    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _DIRECTED_MAGIC:
            raise SerializationError(f"{path} is not a {_DIRECTED_MAGIC} snapshot")
        meta = json.loads(str(data["meta"]))
        n = int(data["graph_n"])
        graph = _digraph_from_arrays(data, n)
        ids = np.ascontiguousarray(data["landmarks"], dtype=np.int64)
        sides = []
        for prefix in ("out", "in"):
            store = {
                name: data[f"{prefix}_{name}"] for name in DIRECTED_SIDE_ARRAYS
            }
            store["landmarks"] = ids
            sides.append(store)
    return DirectedVicinityOracle.from_side_stores(
        graph,
        float(meta["alpha"]),
        ids,
        flag_bytes(n, ids),
        sides[0],
        sides[1],
        meta["fallback"],
    )


def _digraph_from_arrays(data, n: int):
    """Both-orientation :class:`DiGraph` over stored (or mapped) CSR."""
    from repro.graph.digraph import DiGraph

    return DiGraph(
        n,
        data["out_indptr"],
        data["out_indices"],
        data["in_indptr"],
        data["in_indices"],
    )


def load_index(path: PathLike) -> VicinityIndex:
    """Load an index saved by :func:`save_index` (either format).

    Raises:
        SerializationError: on unknown or corrupt files.
    """
    data, meta = load_flat_arrays(path, include_graph=True)
    config = OracleConfig(**meta["config"])
    weights = data["graph_weights"] if "graph_weights" in data else None
    graph = CSRGraph(
        meta["n"], data["graph_indptr"], data["graph_indices"], weights
    )
    landmarks = landmark_set_from_ids(graph, data["landmarks"].tolist(), config.alpha)
    landmarks.scale = float(data["landmark_scale"])

    vic_offsets = data["vic_offsets"]
    vic_nodes = data["vic_nodes"]
    vic_dists = data["vic_dists"]
    vic_preds = data["vic_preds"]
    member_offsets = data["member_offsets"]
    member_nodes = data["member_nodes"]
    boundary_offsets = data["boundary_offsets"]
    boundary_nodes = data["boundary_nodes"]
    radii = data["radii"]
    weighted = weights is not None

    vicinities: list[Vicinity] = []
    for u in range(graph.n):
        lo, hi = int(vic_offsets[u]), int(vic_offsets[u + 1])
        keys = vic_nodes[lo:hi].tolist()
        values = vic_dists[lo:hi].tolist()
        preds = vic_preds[lo:hi].tolist()
        dist = dict(zip(keys, values))
        # Missing predecessors sit outside [0, n): -1 in legacy
        # signed stores, the all-ones sentinel in compact ones.
        pred = {k: p for k, p in zip(keys, preds) if 0 <= p < graph.n}
        mlo, mhi = int(member_offsets[u]), int(member_offsets[u + 1])
        members = frozenset(member_nodes[mlo:mhi].tolist())
        blo, bhi = int(boundary_offsets[u]), int(boundary_offsets[u + 1])
        boundary = boundary_nodes[blo:bhi].tolist()
        radius = None if np.isnan(radii[u]) else radii[u]
        if radius is not None and not weighted:
            radius = int(radius)
        vicinities.append(
            Vicinity(
                node=u,
                radius=radius,
                dist=dist,
                pred=pred,
                members=members,
                boundary=boundary,
            )
        )

    tables: dict[int, LandmarkTable] = {}
    table_dist = data["table_dist"]
    table_parent = data["table_parent"]
    if table_dist.size:
        has_parents = table_parent.size > 0
        for row, landmark in enumerate(landmarks.ids.tolist()):
            parent = None
            if has_parents:
                # Record-level tables keep the dict builder's int32
                # layout with -1 markers; compact stores widen back
                # here so round-tripped tables are array-identical.
                parent = _widen_parent_row(table_parent[row], graph.n)
            tables[landmark] = LandmarkTable(
                landmark=landmark, dist=table_dist[row], parent=parent
            )
    return VicinityIndex(graph, config, landmarks, vicinities, tables)


def _widen_parent_row(row: np.ndarray, n: int) -> np.ndarray:
    """One landmark table's parents as int32 with -1 markers restored."""
    wide = row.astype(np.int32)
    if row.dtype.kind == "u":
        wide[row >= n] = -1
    return wide
