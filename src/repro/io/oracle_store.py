"""Round-trip persistence for a built :class:`VicinityIndex`.

The offline phase is the expensive part of the paper's design; a
deployment builds once and serves forever.  This module flattens the
per-node hash tables into offset-indexed arrays (the standard CSR-of-
dicts trick) so the whole index round-trips through one compressed
``.npz`` with no pickling.

Layout (version 1):

* ``config``      — JSON of the :class:`OracleConfig`;
* ``graph_*``     — the indexed graph's CSR arrays;
* ``landmarks``   — landmark ids; ``landmark_scale`` — calibrated scale;
* ``vic_offsets / vic_nodes / vic_dists / vic_preds`` — every node's
  distance/predecessor table, concatenated;
* ``member_offsets / member_nodes`` — vicinity membership (differs from
  the distance table only on weighted graphs);
* ``boundary_offsets / boundary_nodes`` — boundary lists;
* ``radii``       — per-node vicinity radius (NaN = none);
* ``table_dist / table_parent`` — stacked landmark tables.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.config import OracleConfig
from repro.core.flat import flatten_index
from repro.core.index import LandmarkTable, VicinityIndex
from repro.core.landmarks import landmark_set_from_ids
from repro.core.vicinity import Vicinity
from repro.exceptions import SerializationError
from repro.graph.csr import CSRGraph

PathLike = Union[str, Path]

_MAGIC = "repro-oracle-v1"
_DIRECTED_MAGIC = "repro-directed-oracle-v1"

#: Per-orientation arrays persisted by :func:`save_directed_oracle`
#: (stored twice, prefixed ``out_`` / ``in_``).
DIRECTED_SIDE_ARRAYS = (
    "vic_offsets",
    "vic_nodes",
    "vic_dists",
    "vic_preds",
    "member_offsets",
    "member_nodes",
    "boundary_offsets",
    "boundary_nodes",
    "radii",
    "table_dist",
    "table_parent",
)

#: Index arrays persisted by :func:`save_index` (the flattened layout,
#: produced by :func:`repro.core.flat.flatten_index`).
FLAT_STORE_ARRAYS = (
    "landmarks",
    "landmark_scale",
    "vic_offsets",
    "vic_nodes",
    "vic_dists",
    "vic_preds",
    "member_offsets",
    "member_nodes",
    "boundary_offsets",
    "boundary_nodes",
    "radii",
    "table_dist",
    "table_parent",
)


def save_index(index: VicinityIndex, path: PathLike) -> None:
    """Serialise a built index (graph included) to ``.npz``."""
    graph = index.graph
    config = dict(asdict(index.config))
    payload = {
        "magic": np.asarray(_MAGIC),
        "config": np.asarray(json.dumps(config)),
        "graph_n": np.asarray(graph.n, dtype=np.int64),
        "graph_indptr": graph.indptr,
        "graph_indices": graph.indices,
        **flatten_index(index),
    }
    if graph.is_weighted:
        payload["graph_weights"] = graph.weights
    np.savez_compressed(path, **payload)


def load_flat_arrays(
    path: PathLike, *, include_graph: bool = False
) -> tuple[dict[str, np.ndarray], dict]:
    """Load a saved index's raw offset-indexed arrays, dict-free.

    The serving backends probe the flattened arrays directly (see
    :class:`repro.core.flat.FlatIndex`), so they can skip
    :func:`load_index`'s per-node dict materialisation — the expensive
    part of loading — entirely.  The O(|E|) graph CSR arrays are needed
    at query time by *nothing* in the flat serving path, so they stay
    compressed unless ``include_graph`` asks for them.

    Returns:
        ``(arrays, meta)`` — the :data:`FLAT_STORE_ARRAYS` (plus the
        graph CSR arrays when ``include_graph``), and a metadata dict
        with ``n``, ``weighted``, ``store_paths`` and the full
        ``config`` mapping.

    Raises:
        SerializationError: on unknown or corrupt files.
    """
    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _MAGIC:
            raise SerializationError(f"{path} is not a {_MAGIC} snapshot")
        config = json.loads(str(data["config"]))
        arrays = {name: data[name] for name in FLAT_STORE_ARRAYS}
        weighted = "graph_weights" in data
        if include_graph:
            arrays["graph_indptr"] = data["graph_indptr"]
            arrays["graph_indices"] = data["graph_indices"]
            if weighted:
                arrays["graph_weights"] = data["graph_weights"]
        meta = {
            "n": int(data["graph_n"]),
            "weighted": weighted,
            "store_paths": bool(config.get("store_paths", True)),
            "config": config,
        }
    return arrays, meta


def load_flat_index(path: PathLike):
    """Load a saved index straight into a probe-ready ``FlatIndex``.

    The dict-free loading path of the serving layer: the shard
    backends' ``from_saved`` constructors and any
    :class:`~repro.core.engine.FlatQueryEngine` consumer go through
    this instead of :func:`load_index`, skipping per-node dict
    materialisation entirely.
    """
    from repro.core.flat import FlatIndex

    arrays, meta = load_flat_arrays(path)
    return FlatIndex.from_store_arrays(
        arrays,
        n=meta["n"],
        weighted=meta["weighted"],
        store_paths=meta["store_paths"],
    )


def save_directed_oracle(oracle, path: PathLike) -> None:
    """Serialise a :class:`~repro.core.directed.DirectedVicinityOracle`.

    Persists the digraph CSR (both orientations) plus each side's flat
    arrays in the same offset-indexed layout :func:`save_index` uses —
    the PR 3 follow-up that lets a loaded directed oracle serve its
    first query with no flattening pass at all.  A flat-built oracle
    saves the arrays it already holds; a dict-built one flattens once
    (cached on the oracle).
    """
    graph = oracle.graph
    out_store, in_store = oracle.flat_side_stores()
    meta = {"alpha": float(oracle.alpha), "fallback": oracle.fallback}
    payload = {
        "magic": np.asarray(_DIRECTED_MAGIC),
        "meta": np.asarray(json.dumps(meta)),
        "graph_n": np.asarray(graph.n, dtype=np.int64),
        "out_indptr": graph.out_indptr,
        "out_indices": graph.out_indices,
        "in_indptr": graph.in_indptr,
        "in_indices": graph.in_indices,
        "landmarks": oracle.landmark_ids,
    }
    for prefix, store in (("out", out_store), ("in", in_store)):
        for name in DIRECTED_SIDE_ARRAYS:
            payload[f"{prefix}_{name}"] = store[name]
    np.savez_compressed(path, **payload)


def load_directed_oracle(path: PathLike):
    """Load a directed oracle saved by :func:`save_directed_oracle`.

    Dict-free: both engine sides come straight from the stored arrays
    (per-node records materialise lazily only if the record API is
    touched), so queries are served immediately without re-flattening
    either orientation.

    Raises:
        SerializationError: on unknown or corrupt files.
    """
    from repro.core.directed import DirectedVicinityOracle
    from repro.core.landmarks import flag_bytes
    from repro.graph.digraph import DiGraph

    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _DIRECTED_MAGIC:
            raise SerializationError(f"{path} is not a {_DIRECTED_MAGIC} snapshot")
        meta = json.loads(str(data["meta"]))
        n = int(data["graph_n"])
        graph = DiGraph(
            n,
            data["out_indptr"],
            data["out_indices"],
            data["in_indptr"],
            data["in_indices"],
        )
        ids = np.ascontiguousarray(data["landmarks"], dtype=np.int64)
        sides = []
        for prefix in ("out", "in"):
            store = {
                name: data[f"{prefix}_{name}"] for name in DIRECTED_SIDE_ARRAYS
            }
            store["landmarks"] = ids
            sides.append(store)
    return DirectedVicinityOracle.from_side_stores(
        graph,
        float(meta["alpha"]),
        ids,
        flag_bytes(n, ids),
        sides[0],
        sides[1],
        meta["fallback"],
    )


def load_index(path: PathLike) -> VicinityIndex:
    """Load an index saved by :func:`save_index`.

    Raises:
        SerializationError: on unknown or corrupt files.
    """
    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _MAGIC:
            raise SerializationError(f"{path} is not a {_MAGIC} snapshot")
        config_dict = json.loads(str(data["config"]))
        config = OracleConfig(**config_dict)
        weights = data["graph_weights"] if "graph_weights" in data else None
        graph = CSRGraph(
            int(data["graph_n"]), data["graph_indptr"], data["graph_indices"], weights
        )
        landmarks = landmark_set_from_ids(graph, data["landmarks"].tolist(), config.alpha)
        landmarks.scale = float(data["landmark_scale"])

        vic_offsets = data["vic_offsets"]
        vic_nodes = data["vic_nodes"]
        vic_dists = data["vic_dists"]
        vic_preds = data["vic_preds"]
        member_offsets = data["member_offsets"]
        member_nodes = data["member_nodes"]
        boundary_offsets = data["boundary_offsets"]
        boundary_nodes = data["boundary_nodes"]
        radii = data["radii"]
        weighted = weights is not None

        vicinities: list[Vicinity] = []
        for u in range(graph.n):
            lo, hi = int(vic_offsets[u]), int(vic_offsets[u + 1])
            keys = vic_nodes[lo:hi].tolist()
            values = vic_dists[lo:hi].tolist()
            preds = vic_preds[lo:hi].tolist()
            dist = dict(zip(keys, values))
            pred = {k: p for k, p in zip(keys, preds) if p >= 0}
            mlo, mhi = int(member_offsets[u]), int(member_offsets[u + 1])
            members = frozenset(member_nodes[mlo:mhi].tolist())
            blo, bhi = int(boundary_offsets[u]), int(boundary_offsets[u + 1])
            boundary = boundary_nodes[blo:bhi].tolist()
            radius = None if np.isnan(radii[u]) else radii[u]
            if radius is not None and not weighted:
                radius = int(radius)
            vicinities.append(
                Vicinity(
                    node=u,
                    radius=radius,
                    dist=dist,
                    pred=pred,
                    members=members,
                    boundary=boundary,
                )
            )

        tables: dict[int, LandmarkTable] = {}
        table_dist = data["table_dist"]
        table_parent = data["table_parent"]
        if table_dist.size:
            has_parents = table_parent.size > 0
            for row, landmark in enumerate(landmarks.ids.tolist()):
                parent = table_parent[row] if has_parents else None
                tables[landmark] = LandmarkTable(
                    landmark=landmark, dist=table_dist[row], parent=parent
                )
        return VicinityIndex(graph, config, landmarks, vicinities, tables)
