"""Binary ``.npz`` snapshots of CSR graphs.

The arrays are stored verbatim, so loading is a metadata check plus a
few mmap-able reads — the right format for multi-million-edge inputs
that the text parser would take minutes over.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import SerializationError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph

PathLike = Union[str, Path]

_GRAPH_MAGIC = "repro-csr-v1"
_DIGRAPH_MAGIC = "repro-dicsr-v1"


def save_graph(graph: CSRGraph, path: PathLike) -> None:
    """Snapshot an undirected graph to ``.npz``."""
    payload = {
        "magic": np.asarray(_GRAPH_MAGIC),
        "n": np.asarray(graph.n, dtype=np.int64),
        "indptr": graph.indptr,
        "indices": graph.indices,
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(path, **payload)


def load_graph(path: PathLike) -> CSRGraph:
    """Load an undirected graph snapshot.

    Raises:
        SerializationError: if the file is not a graph snapshot.
    """
    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _GRAPH_MAGIC:
            raise SerializationError(f"{path} is not a {_GRAPH_MAGIC} snapshot")
        weights = data["weights"] if "weights" in data else None
        return CSRGraph(int(data["n"]), data["indptr"], data["indices"], weights)


def save_digraph(graph: DiGraph, path: PathLike) -> None:
    """Snapshot a digraph to ``.npz``."""
    payload = {
        "magic": np.asarray(_DIGRAPH_MAGIC),
        "n": np.asarray(graph.n, dtype=np.int64),
        "out_indptr": graph.out_indptr,
        "out_indices": graph.out_indices,
        "in_indptr": graph.in_indptr,
        "in_indices": graph.in_indices,
    }
    if graph.out_weights is not None:
        payload["out_weights"] = graph.out_weights
        payload["in_weights"] = graph.in_weights
    np.savez_compressed(path, **payload)


def load_digraph(path: PathLike) -> DiGraph:
    """Load a digraph snapshot.

    Raises:
        SerializationError: if the file is not a digraph snapshot.
    """
    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _DIGRAPH_MAGIC:
            raise SerializationError(f"{path} is not a {_DIGRAPH_MAGIC} snapshot")
        out_w = data["out_weights"] if "out_weights" in data else None
        in_w = data["in_weights"] if "in_weights" in data else None
        return DiGraph(
            int(data["n"]),
            data["out_indptr"],
            data["out_indices"],
            data["in_indptr"],
            data["in_indices"],
            out_w,
            in_w,
        )
