"""Persistence: edge-list text files, binary graph snapshots, oracles.

* :mod:`~repro.io.edgelist` — the interchange format crawls arrive in
  (one ``u v [weight]`` pair per line, ``#`` comments);
* :mod:`~repro.io.binary` — fast ``.npz`` snapshots of CSR graphs;
* :mod:`~repro.io.oracle_store` — round-trip a built
  :class:`~repro.core.index.VicinityIndex` so the offline phase is paid
  once (the deployment model the paper assumes), plus
  :func:`~repro.io.oracle_store.load_flat_arrays` for dict-free loading
  of the flattened arrays the serving backends probe directly;
* :mod:`~repro.io.shm` — one shared-memory segment holding many named
  arrays, the zero-copy substrate of the process-pool shard backend.
"""

from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.binary import load_digraph, load_graph, save_digraph, save_graph
from repro.io.oracle_store import load_flat_arrays, load_index, save_index
from repro.io.shm import SharedArrayBundle

__all__ = [
    "read_edgelist",
    "write_edgelist",
    "save_graph",
    "load_graph",
    "save_digraph",
    "load_digraph",
    "save_index",
    "load_index",
    "load_flat_arrays",
    "SharedArrayBundle",
]
