"""Plain-text edge lists — the format crawls are distributed in.

Lines are ``u v`` or ``u v weight``; ``#``-prefixed lines and blank
lines are ignored.  Node ids must be non-negative integers (use
:class:`repro.graph.labels.LabelEncoder` upstream for labelled data).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import SerializationError
from repro.graph.builder import digraph_from_arrays, graph_from_arrays
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph

PathLike = Union[str, Path]


def read_edgelist(
    path: PathLike, *, directed: bool = False, weighted: bool = False
):
    """Read a graph from a text edge list.

    Args:
        path: file to read.
        directed: build a :class:`DiGraph` preserving arc orientation.
        weighted: expect (and require) a third weight column.

    Returns:
        :class:`CSRGraph` or :class:`DiGraph`.

    Raises:
        SerializationError: on malformed lines.
    """
    src: list[int] = []
    dst: list[int] = []
    weights: list[float] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            expected = 3 if weighted else 2
            if len(parts) < expected:
                raise SerializationError(
                    f"{path}:{lineno}: expected {expected} columns, got {len(parts)}"
                )
            try:
                src.append(int(parts[0]))
                dst.append(int(parts[1]))
                if weighted:
                    weights.append(float(parts[2]))
            except ValueError as exc:
                raise SerializationError(f"{path}:{lineno}: {exc}") from exc
    src_arr = np.asarray(src, dtype=np.int64)
    dst_arr = np.asarray(dst, dtype=np.int64)
    weight_arr = np.asarray(weights, dtype=np.float64) if weighted else None
    if directed:
        return digraph_from_arrays(src_arr, dst_arr, weights=weight_arr)
    return graph_from_arrays(src_arr, dst_arr, weights=weight_arr)


def write_edgelist(graph, path: PathLike, *, header: str = "") -> None:
    """Write a graph as a text edge list (one line per edge/arc).

    Undirected graphs emit each edge once (``u < v``); digraphs emit
    every arc.  Weighted graphs gain a third column.
    """
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        if isinstance(graph, DiGraph):
            for u, v in graph.arcs():
                handle.write(f"{u} {v}\n")
            return
        if not isinstance(graph, CSRGraph):
            raise SerializationError(f"cannot serialise {type(graph).__name__}")
        if graph.is_weighted:
            for u, v, w in graph.weighted_edges():
                handle.write(f"{u} {v} {w:g}\n")
        else:
            buffer = io.StringIO()
            for u, v in graph.edges():
                buffer.write(f"{u} {v}\n")
            handle.write(buffer.getvalue())
