"""Human-readable formatting for experiment output.

These helpers render the units the paper uses — milliseconds and
microseconds for latency, multiplicative factors for speed-ups and
memory ratios — so reproduced tables read like the originals.
"""

from __future__ import annotations


def format_duration(seconds: float) -> str:
    """Render a duration with the most natural unit (s / ms / us / ns)."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with binary units (B / KiB / MiB / GiB)."""
    if num_bytes < 0:
        raise ValueError("byte count must be non-negative")
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_ratio(ratio: float) -> str:
    """Render a multiplicative factor the way the paper does (e.g. ``431x``)."""
    if ratio < 0:
        raise ValueError("ratio must be non-negative")
    if ratio >= 100:
        return f"{ratio:.0f}x"
    if ratio >= 10:
        return f"{ratio:.1f}x"
    return f"{ratio:.2f}x"


def format_count(count: float) -> str:
    """Render a large count with thousands separators (e.g. ``68,990,000``)."""
    if float(count).is_integer():
        return f"{int(count):,}"
    return f"{count:,.2f}"
