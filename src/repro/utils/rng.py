"""Deterministic random-number plumbing.

Every stochastic component in the library (dataset generators, landmark
sampling, workload sampling) accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None``.  These helpers normalise
that argument so experiments are reproducible end to end from a single
integer seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` yields a fresh OS-seeded generator, an ``int`` seeds a new
    generator deterministically, and an existing generator is returned
    unchanged (so callers can thread one generator through a pipeline).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected None, int or numpy Generator, got {type(rng).__name__}")


def spawn_rng(rng: RngLike, *, streams: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``streams`` independent child generators.

    Child streams are derived with :meth:`numpy.random.Generator.spawn`
    so that parallel components (for example, repeated experiment runs)
    draw from non-overlapping sequences while remaining reproducible.
    """
    if streams < 0:
        raise ValueError("streams must be non-negative")
    return list(ensure_rng(rng).spawn(streams))
