"""Small shared utilities: seeded RNG plumbing, timers, formatting."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timer import Timer, time_callable
from repro.utils.format import format_bytes, format_duration, format_ratio

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "Timer",
    "time_callable",
    "format_bytes",
    "format_duration",
    "format_ratio",
]
