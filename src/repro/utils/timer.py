"""Wall-clock timing helpers used by the experiment harness.

The paper reports per-query latency in milliseconds and microseconds; the
helpers here standardise on seconds internally and leave formatting to
:mod:`repro.utils.format`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Tuple


@dataclass
class Timer:
    """A context-manager stopwatch accumulating elapsed wall-clock time.

    Example::

        timer = Timer()
        with timer:
            do_work()
        print(timer.elapsed)

    The same instance can be re-entered; ``elapsed`` accumulates across
    uses and ``laps`` records each individual measurement.
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap

    @property
    def count(self) -> int:
        """Number of completed measurements."""
        return len(self.laps)

    @property
    def mean(self) -> float:
        """Mean seconds per measurement (0.0 before any measurement)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0

    @property
    def max(self) -> float:
        """Worst-case seconds over all measurements (0.0 if none)."""
        return max(self.laps) if self.laps else 0.0


def time_callable(fn: Callable[[], Any]) -> Tuple[float, Any]:
    """Run ``fn`` once, returning ``(elapsed_seconds, result)``."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result
